//===- TransformTests.cpp - LICM / DCE unit and semantics tests ----------------===//
//
// Part of warp-swp.
//
//===----------------------------------------------------------------------===//

#include "swp/IR/Transforms.h"

#include "swp/IR/Expansion.h"
#include "swp/IR/IRBuilder.h"
#include "swp/IR/Verifier.h"
#include "swp/Interp/Interpreter.h"
#include "swp/Workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

unsigned opsIn(const StmtList &List) { return countOps(List); }

/// Finds the single top-level loop.
ForStmt *onlyLoop(Program &P) {
  for (StmtPtr &S : P.Body)
    if (auto *For = dyn_cast<ForStmt>(S.get()))
      return For;
  return nullptr;
}

} // namespace

TEST(LICM, HoistsConstantsAndInvariantArithmetic) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  VReg C = B.fconst(2.0);         // Invariant.
  VReg KK = B.fmul(K, C);         // Invariant (after C hoists).
  B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), KK));
  B.endFor();

  unsigned BodyBefore = opsIn(L->Body);
  unsigned Hoisted = hoistLoopInvariants(P);
  EXPECT_EQ(Hoisted, 2u);
  EXPECT_EQ(opsIn(L->Body), BodyBefore - 2);
  DiagnosticEngine DE;
  EXPECT_TRUE(verifyProgram(P, DE)) << DE.str();
}

TEST(LICM, HoistsInvariantLoadWhenSafe) {
  // kw[0] inside the loop: invariant address, no stores to kw, loop runs.
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  unsigned KW = P.createArray("kw", RegClass::Float, 4);
  ForStmt *L = B.beginForImm(0, 63);
  VReg W = B.fload(KW, B.cx(0));
  B.fstore(A, B.ix(L), B.fmul(B.fload(A, B.ix(L)), W));
  B.endFor();
  EXPECT_GE(hoistLoopInvariants(P), 1u);
  // The kw load left the body.
  bool LoadInBody = false;
  forEachStmt(L->Body, [&](const Stmt &S) {
    if (const auto *Op = dyn_cast<OpStmt>(&S))
      if (Op->Op.Opc == Opcode::FLoad && Op->Op.Mem.ArrayId == KW)
        LoadInBody = true;
  });
  EXPECT_FALSE(LoadInBody);
}

TEST(LICM, DoesNotHoistLoadsFromStoredArrays) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  ForStmt *L = B.beginForImm(0, 63);
  VReg V = B.fload(A, B.cx(0)); // a[0] is also written below.
  B.fstore(A, B.ix(L), V);
  B.endFor();
  EXPECT_EQ(hoistLoopInvariants(P), 0u);
}

TEST(LICM, DoesNotHoistVariantOrCarried) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  VReg Acc = P.createVReg(RegClass::Float, "acc");
  B.assignUn(Acc, Opcode::FMov, B.fconst(0.0));
  ForStmt *L = B.beginForImm(0, 63);
  // Variant: depends on the loop's load.
  VReg V = B.fload(A, B.ix(L));
  // Carried: acc reads itself.
  B.assign(Acc, Opcode::FAdd, Acc, V);
  B.endFor();
  EXPECT_EQ(hoistLoopInvariants(P), 0u);
}

TEST(LICM, ZeroTripLoopKeepsPostLoopState) {
  // x := 5.0; for (zero trips) { x := 3.0 }; out[0] := x.
  // Hoisting x := 3.0 would corrupt the post-loop value.
  Program P;
  IRBuilder B(P);
  unsigned Out = P.createArray("out", RegClass::Float, 1);
  VReg N = P.createVReg(RegClass::Int, "n", /*LiveIn=*/true);
  VReg X = P.createVReg(RegClass::Float, "x");
  B.assignUn(X, Opcode::FMov, B.fconst(5.0));
  ForStmt *L = B.beginForReg(1, N); // Runtime bound: may be zero-trip.
  (void)L;
  B.assignUn(X, Opcode::FMov, B.fconst(3.0));
  B.endFor();
  B.fstore(Out, B.cx(0), X);

  hoistLoopInvariants(P);
  ProgramInput In;
  In.IntScalars[N.Id] = 0; // Zero trips.
  ProgramState S = interpret(P, In);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_FLOAT_EQ(S.FloatArrays[Out][0], 5.0f);
}

TEST(DCE, RemovesUnusedPureChains) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 8);
  VReg Used = B.fconst(1.0);
  VReg Dead1 = B.fconst(2.0);
  VReg Dead2 = B.fadd(Dead1, Dead1); // Chain dies together.
  (void)Dead2;
  B.fstore(A, B.cx(0), Used);
  EXPECT_EQ(eliminateDeadCode(P), 2u);
  EXPECT_EQ(countOps(P.Body), 2u);
}

TEST(DCE, KeepsSideEffects) {
  Program P;
  IRBuilder B(P);
  VReg V = B.recv(0); // Pops the channel even if unread.
  (void)V;
  B.send(0, B.fconst(1.0));
  EXPECT_EQ(eliminateDeadCode(P), 0u);
}

TEST(DCE, RemovesEmptyConditionalsAndLoops) {
  Program P;
  IRBuilder B(P);
  VReg C = B.iconst(1);
  B.beginIf(C);
  VReg Dead = B.fconst(3.0);
  (void)Dead;
  B.endIf();
  ForStmt *L = B.beginForImm(0, 7);
  (void)L;
  VReg AlsoDead = B.fconst(4.0);
  (void)AlsoDead;
  B.endFor();
  eliminateDeadCode(P);
  EXPECT_TRUE(P.Body.empty())
      << "dead body -> empty if/loop -> dead condition, all removed";
}

TEST(DCE, TrimsExpExpansion) {
  // The EXP expansion computes a scale that partially dies when the
  // result feeds a simple consumer; DCE must shrink it without changing
  // the value.
  Program P;
  IRBuilder B(P);
  unsigned Out = P.createArray("out", RegClass::Float, 1);
  VReg X = P.createVReg(RegClass::Float, "x", /*LiveIn=*/true);
  B.fstore(Out, B.cx(0), B.fexp(X));
  expandLibraryOps(P);
  unsigned Before = countOps(P.Body);
  ProgramInput In;
  In.FloatScalars[X.Id] = 1.75f;
  ProgramState Golden = interpret(P, In);
  unsigned Removed = eliminateDeadCode(P);
  ProgramState After = interpret(P, In);
  ASSERT_TRUE(Golden.Ok && After.Ok);
  EXPECT_EQ(compareStates(P, Golden, After), "");
  EXPECT_EQ(countOps(P.Body), Before - Removed);
}

//===----------------------------------------------------------------------===//
// Semantics preservation across the workload corpus.
//===----------------------------------------------------------------------===//

class TransformSemantics : public ::testing::TestWithParam<size_t> {};

TEST_P(TransformSemantics, OptimizedStateMatches) {
  static const auto Pop = syntheticPopulation(18, 2024);
  const WorkloadSpec &Spec = Pop[GetParam()];
  BuiltWorkload Original = Spec.Make();
  BuiltWorkload Optimized = Spec.Make();
  expandLibraryOps(*Original.Prog);
  expandLibraryOps(*Optimized.Prog);
  while (eliminateDeadCode(*Optimized.Prog) +
             hoistLoopInvariants(*Optimized.Prog) !=
         0) {
  }
  DiagnosticEngine DE;
  ASSERT_TRUE(verifyProgram(*Optimized.Prog, DE)) << DE.str();
  ProgramState A = interpret(*Original.Prog, Original.Input);
  ProgramState B = interpret(*Optimized.Prog, Optimized.Input);
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(compareStates(*Original.Prog, A, B), "") << Spec.Name;
}

INSTANTIATE_TEST_SUITE_P(Population, TransformSemantics,
                         ::testing::Range<size_t>(0, 18));

TEST(TransformSemantics, LivermoreKernelsMatch) {
  for (const WorkloadSpec &Spec : livermoreKernels()) {
    BuiltWorkload Original = Spec.Make();
    BuiltWorkload Optimized = Spec.Make();
    expandLibraryOps(*Original.Prog);
    expandLibraryOps(*Optimized.Prog);
    while (eliminateDeadCode(*Optimized.Prog) +
               hoistLoopInvariants(*Optimized.Prog) !=
           0) {
    }
    ProgramState A = interpret(*Original.Prog, Original.Input);
    ProgramState B = interpret(*Optimized.Prog, Optimized.Input);
    ASSERT_TRUE(A.Ok && B.Ok) << Spec.Name;
    EXPECT_EQ(compareStates(*Original.Prog, A, B), "") << Spec.Name;
  }
}

//===----------------------------------------------------------------------===//
// Local value numbering.
//===----------------------------------------------------------------------===//

TEST(LVN, RewritesRedundantArithmeticAndLoads) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 16);
  unsigned Out = P.createArray("out", RegClass::Float, 4);
  VReg X = P.createVReg(RegClass::Float, "x", /*LiveIn=*/true);
  VReg S1 = B.fadd(X, X);
  VReg L1 = B.fload(A, B.cx(3));
  VReg S2 = B.fadd(X, X);      // Redundant arithmetic.
  VReg L2 = B.fload(A, B.cx(3)); // Redundant load.
  B.fstore(Out, B.cx(0), S1);
  B.fstore(Out, B.cx(1), S2);
  B.fstore(Out, B.cx(2), L1);
  B.fstore(Out, B.cx(3), L2);
  EXPECT_EQ(localValueNumbering(P), 2u);
  unsigned Movs = 0, Adds = 0, Loads = 0;
  forEachStmt(P.Body, [&](const Stmt &S) {
    if (const auto *Op = dyn_cast<OpStmt>(&S)) {
      if (Op->Op.Opc == Opcode::FMov)
        ++Movs;
      if (Op->Op.Opc == Opcode::FAdd)
        ++Adds;
      if (Op->Op.Opc == Opcode::FLoad)
        ++Loads;
    }
  });
  EXPECT_EQ(Movs, 2u);
  EXPECT_EQ(Adds, 1u);
  EXPECT_EQ(Loads, 1u);
}

TEST(LVN, RedefinedOperandBlocksReuse) {
  Program P;
  IRBuilder B(P);
  unsigned Out = P.createArray("out", RegClass::Float, 2);
  VReg X = P.createVReg(RegClass::Float, "x");
  B.assignMov(X, B.fconst(1.0));
  VReg S1 = B.fadd(X, X);
  B.assignMov(X, B.fconst(2.0)); // X changes: x+x is no longer available.
  VReg S2 = B.fadd(X, X);
  B.fstore(Out, B.cx(0), S1);
  B.fstore(Out, B.cx(1), S2);
  EXPECT_EQ(localValueNumbering(P), 0u);
}

TEST(LVN, StoreInvalidatesLoads) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 8);
  unsigned Out = P.createArray("out", RegClass::Float, 2);
  VReg L1 = B.fload(A, B.cx(0));
  B.fstore(A, B.cx(0), B.fconst(9.0));
  VReg L2 = B.fload(A, B.cx(0)); // Must re-read.
  B.fstore(Out, B.cx(0), L1);
  B.fstore(Out, B.cx(1), L2);
  EXPECT_EQ(localValueNumbering(P), 0u);

  ProgramState S = interpret(P, {});
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_FLOAT_EQ(S.FloatArrays[Out][0], 0.0f);
  EXPECT_FLOAT_EQ(S.FloatArrays[Out][1], 9.0f);
}

TEST(LVN, ConditionalBoundaryFlushes) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 8);
  unsigned Out = P.createArray("out", RegClass::Float, 1);
  VReg L1 = B.fload(A, B.cx(0));
  VReg C = B.iconst(1);
  B.beginIf(C);
  B.fstore(A, B.cx(0), B.fconst(5.0)); // Conditional store.
  B.endIf();
  VReg L2 = B.fload(A, B.cx(0)); // Availability flushed at the IF.
  B.fstore(Out, B.cx(0), B.fsub(L2, L1));
  EXPECT_EQ(localValueNumbering(P), 0u);
  ProgramState S = interpret(P, {});
  ASSERT_TRUE(S.Ok);
  EXPECT_FLOAT_EQ(S.FloatArrays[Out][0], 5.0f);
}

TEST(LVN, PopulationSemanticsPreserved) {
  for (const WorkloadSpec &Spec : syntheticPopulation(10, 555)) {
    BuiltWorkload Original = Spec.Make();
    BuiltWorkload Optimized = Spec.Make();
    expandLibraryOps(*Original.Prog);
    expandLibraryOps(*Optimized.Prog);
    localValueNumbering(*Optimized.Prog);
    DiagnosticEngine DE;
    ASSERT_TRUE(verifyProgram(*Optimized.Prog, DE)) << DE.str();
    ProgramState A = interpret(*Original.Prog, Original.Input);
    ProgramState B = interpret(*Optimized.Prog, Optimized.Input);
    ASSERT_TRUE(A.Ok && B.Ok);
    EXPECT_EQ(compareStates(*Original.Prog, A, B), "") << Spec.Name;
  }
}
