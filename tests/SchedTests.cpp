//===- SchedTests.cpp - List scheduler / reservation table tests --------------===//
//
// Part of warp-swp.
//
//===----------------------------------------------------------------------===//

#include "swp/Sched/ListScheduler.h"
#include "swp/Sched/ReservationTables.h"

#include "swp/DDG/DDGBuilder.h"
#include "swp/IR/IRBuilder.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

DepGraph bodyGraph(const Program &P, const ForStmt *L,
                   const MachineDescription &MD) {
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = L->LoopId;
  return buildLoopDepGraph(simpleUnitsFromBody(L->Body, MD), MD, Opts);
}

} // namespace

TEST(ReservationTable, EnforcesUnitCounts) {
  MachineDescription MD = MachineDescription::warpCell();
  ReservationTable RT(MD);
  Operation Add;
  Add.Opc = Opcode::FAdd;
  Add.Def = VReg(0);
  Add.Operands = {VReg(1), VReg(2)};
  ScheduleUnit U = ScheduleUnit::makeSimple(Add, MD);
  EXPECT_TRUE(RT.canPlace(U, 0));
  RT.place(U, 0);
  EXPECT_FALSE(RT.canPlace(U, 0)) << "one adder only";
  EXPECT_TRUE(RT.canPlace(U, 1));
  unsigned FAddRes = MD.opcodeInfo(Opcode::FAdd).Uses[0].ResId;
  EXPECT_EQ(RT.usedAt(0, FAddRes), 1u);
  EXPECT_EQ(RT.usedAt(5, FAddRes), 0u);
}

TEST(ListScheduler, RespectsChainsAndResources) {
  // c[i] = (a[i] + k) * k: load -> add -> mul -> store serial chain.
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  unsigned C = P.createArray("c", RegClass::Float, 64);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  B.fstore(C, B.ix(L), B.fmul(B.fadd(B.fload(A, B.ix(L)), K), K));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = bodyGraph(P, L, MD);
  Schedule S = listSchedule(G, MD);
  // load at 0 (lat 3), add at 3 (lat 7), mul at 10 (lat 7), store at 17.
  EXPECT_EQ(S.startOf(0), 0);
  EXPECT_EQ(S.startOf(1), 3);
  EXPECT_EQ(S.startOf(2), 10);
  EXPECT_EQ(S.startOf(3), 17);
  EXPECT_EQ(S.issueLength(), 18);
  EXPECT_TRUE(S.satisfiesPrecedence(G, /*S=*/1'000'000));
}

TEST(ListScheduler, ParallelOpsShareCycleAcrossUnits) {
  // Independent add and mul can issue together; two adds cannot.
  Program P;
  IRBuilder B(P);
  VReg X = P.createVReg(RegClass::Float, "x", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 3);
  (void)L;
  B.fadd(X, X);
  B.fmul(X, X);
  B.fadd(X, X);
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = bodyGraph(P, L, MD);
  Schedule S = listSchedule(G, MD);
  EXPECT_EQ(std::min(S.startOf(0), S.startOf(1)), 0);
  EXPECT_EQ(S.startOf(1), 0) << "multiplier is free at cycle 0";
  EXPECT_NE(S.startOf(0), S.startOf(2)) << "single adder";
}

TEST(ListScheduler, HeightPrioritizesCriticalPath) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  unsigned Bb = P.createArray("b", RegClass::Float, 64);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  // Long chain: load a -> add -> store b. Short: unrelated add.
  VReg V = B.fload(A, B.ix(L));
  VReg W = B.fadd(V, K);
  B.fstore(Bb, B.ix(L), W);
  B.fadd(K, K);
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = bodyGraph(P, L, MD);
  std::vector<int64_t> H = computeHeights(G);
  EXPECT_GT(H[0], H[3]) << "chain head must outrank the independent add";
}

TEST(UnpipelinedPeriod, CarriedDependencesStretchThePeriod) {
  // acc += x[i] on Warp: issue length is short but the carried add
  // latency forces a 7-cycle period... unless the period is already
  // longer. Use a tiny body to expose the carried bound.
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  VReg Acc = P.createVReg(RegClass::Float, "acc");
  B.assignUn(Acc, Opcode::FMov, B.fconst(0.0));
  ForStmt *L = B.beginForImm(0, 63);
  B.assign(Acc, Opcode::FAdd, Acc, B.fload(X, B.ix(L)));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = bodyGraph(P, L, MD);
  Schedule S = listSchedule(G, MD);
  int Period = unpipelinedPeriod(G, S);
  // Issue length is 4 (load@0, add@3) but acc -> acc needs 7 cycles
  // between adds: period >= 3 + 7 - 3 = 7... relative to the add at 3,
  // the next add at P+3 must be >= 3+7.
  EXPECT_GE(Period, 7);
}
