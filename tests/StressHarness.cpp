//===- StressHarness.cpp - long-running stress / soak driver -------------------===//
//
// Part of warp-swp.
//
// The soak harness: a standalone binary that hammers the whole stack —
// random programs, compile budgets, forced degradation rungs, fault
// injection, and the parallel II search — for as many iterations as
// asked, checking correctness (interpreter-vs-simulator differential)
// and resource hygiene (RSS growth) as it goes. Every iteration is
// derived deterministically from a single seed, so any failure prints a
// one-line repro that re-runs exactly that iteration.
//
//   swp_stress [--iterations=N] [--seed=S] [--quiet]
//              [--metrics-jsonl=FILE] [--metrics-port=N]
//
// --metrics-jsonl enables the global metrics registry, registers a
// process-RSS gauge, and appends one JSONL snapshot per iteration —
// the soak's resource trajectory, summarizable with
// tools/metrics-report.sh.
//
// --metrics-port additionally serves the registry on 127.0.0.1:N
// (0 = ephemeral; the bound port is printed) and turns the soak into
// its own live scraper: every iteration GETs /metrics and asserts the
// scrape stays consistent — the RSS gauge samples positive, the
// scheduler search counter never goes backwards, and the endpoint's
// request counter matches the number of scrapes this harness made.
//
// Iterations alternate the target machine by seed parity (warp-cell /
// warp-cell-x2), so the per-target metric split sees a mixed fleet;
// the repro line reproduces the target along with everything else.
//
// ctest wires two instances: `stress_smoke` (a few dozen iterations, part
// of the default suite) and `stress_soak` (500 iterations, label "soak",
// run via `ctest -C soak`, also under the asan/tsan presets).
//
// Exit code: 0 when every iteration passed and RSS stayed bounded, 1
// otherwise.
//
//===----------------------------------------------------------------------===//

#include "swp/API/Session.h"
#include "swp/Metrics/Metrics.h"
#include "swp/Metrics/MetricsServer.h"
#include "swp/Metrics/MetricsSink.h"
#include "swp/Support/FaultInject.h"
#include "swp/Verify/Differential.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace swp;

namespace {

/// Resident set size in MiB, from /proc/self/statm (Linux; returns 0
/// where unavailable, which disables the growth check).
double rssMiB() {
  FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0.0;
  unsigned long Size = 0, Resident = 0;
  int Got = std::fscanf(F, "%lu %lu", &Size, &Resident);
  std::fclose(F);
  if (Got != 2)
    return 0.0;
  return Resident * 4096.0 / (1024.0 * 1024.0);
}

/// What one iteration exercises. Drawn from the iteration's own RNG so a
/// single-iteration rerun reproduces the mode too.
enum class StressMode : unsigned {
  Plain,        ///< Ordinary differential run.
  Budget,       ///< Tight compile budget; degradation must stay correct.
  ForcedRung,   ///< --min-rung style forced ladder walk.
  Chaos,        ///< One injected fault; compile must fail clean or recover.
  ParallelII,   ///< Multi-threaded II search (sometimes with worker chaos).
  NumModes,
};

const char *modeName(StressMode M) {
  switch (M) {
  case StressMode::Plain:
    return "plain";
  case StressMode::Budget:
    return "budget";
  case StressMode::ForcedRung:
    return "forced-rung";
  case StressMode::Chaos:
    return "chaos";
  case StressMode::ParallelII:
    return "parallel-ii";
  case StressMode::NumModes:
    break;
  }
  return "?";
}

/// Runs one deterministic iteration; returns an empty string on success
/// or a description of the failure.
std::string runIteration(uint64_t IterSeed, const MachineDescription &MD,
                         std::string &ModeOut) {
  std::mt19937_64 Rng(IterSeed);
  auto Mode = static_cast<StressMode>(
      Rng() % static_cast<unsigned>(StressMode::NumModes));
  ModeOut = modeName(Mode);

  RandomLoopOptions Gen; // All features on.
  WorkloadSpec Spec = randomLoopSpec(IterSeed, Gen);
  CompilerOptions Base;

  switch (Mode) {
  case StressMode::Plain:
    break;
  case StressMode::Budget:
    // Tight enough to trip on many generated programs, loose enough that
    // some compiles finish clean: both halves of the ladder get soaked.
    Base.Budget.MaxNodes = 20 + Rng() % 400;
    if (Rng() % 2)
      Base.Budget.MaxIntervals = 1 + Rng() % 8;
    break;
  case StressMode::ForcedRung:
    Base.MinLadderRung = 1 + static_cast<unsigned>(Rng() % 2);
    break;
  case StressMode::Chaos: {
    // One injected fault in a pipelined ParanoidVerify compile: the
    // compiler must either fail with a structured error or recover and
    // produce clean code — never crash, never emit silently-bad code.
    auto Site = static_cast<faults::Site>(Rng() % faults::NumSites);
    unsigned Occurrence = static_cast<unsigned>(Rng() % 4);
    CompilerOptions Opts;
    Opts.ParanoidVerify = true;
    Opts.ChaosSeed = faults::chaosSeed(Site, Occurrence);
    if (Site == faults::Site::WorkerStall ||
        Site == faults::Site::WorkerDeath)
      Opts.Sched.SearchThreads = 2 + static_cast<unsigned>(Rng() % 2);
    BuiltWorkload W = Spec.Make();
    DiagnosticEngine DE;
    // Routed through the session façade (in-place path) so the soak also
    // exercises the public API entry point under fault injection.
    static Session Sess;
    CompileResponse Resp = Sess.compileNow(*W.Prog, MD, &Opts, &DE);
    CompileResult &CR = Resp.Result;
    if (CR.Ok && !CR.Report.VerifyErrors.empty())
      return std::string("chaos site ") + faults::siteName(Site) +
             ": compile reported Ok with verifier findings";
    if (!CR.Ok && CR.Error.empty())
      return std::string("chaos site ") + faults::siteName(Site) +
             ": compile failed without a structured error";
    return "";
  }
  case StressMode::ParallelII:
    Base.Sched.SearchThreads = 2 + static_cast<unsigned>(Rng() % 3);
    if (Rng() % 4 == 0)
      Base.ChaosSeed = faults::chaosSeed(faults::Site::WorkerDeath,
                                         static_cast<unsigned>(Rng() % 2));
    break;
  case StressMode::NumModes:
    break;
  }

  DiffOutcome D = runDifferential(Spec, MD, Base);
  if (!D.Ok)
    return D.Error;
  return "";
}

/// One blocking HTTP GET against the harness's own metrics endpoint.
/// Returns the response body ("" on any failure).
std::string scrapeMetrics(uint16_t Port, const char *Path) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = std::string("GET ") + Path + " HTTP/1.0\r\n\r\n";
  if (::send(Fd, Req.data(), Req.size(), 0) !=
      static_cast<ssize_t>(Req.size())) {
    ::close(Fd);
    return "";
  }
  std::string Resp;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Resp.append(Buf, static_cast<size_t>(N));
  ::close(Fd);
  size_t HeaderEnd = Resp.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos || Resp.rfind("HTTP/1.0 200", 0) != 0)
    return "";
  return Resp.substr(HeaderEnd + 4);
}

/// Value of the exposition line that starts with exactly \p Series
/// followed by a space; -1 when absent.
double promValue(const std::string &Body, const std::string &Series) {
  size_t Pos = 0;
  std::string Prefix = Series + " ";
  while (Pos < Body.size()) {
    size_t Eol = Body.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Body.size();
    if (Body.compare(Pos, Prefix.size(), Prefix) == 0)
      return std::atof(Body.c_str() + Pos + Prefix.size());
    Pos = Eol + 1;
  }
  return -1.0;
}

/// How many distinct `target="..."` labels a series name carries.
unsigned countTargetLabels(const std::string &Body, const std::string &Name) {
  unsigned Count = 0;
  std::string Needle = Name + "{target=\"";
  for (size_t Pos = Body.find(Needle); Pos != std::string::npos;
       Pos = Body.find(Needle, Pos + 1))
    ++Count;
  return Count;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Iterations = 100;
  uint64_t Seed = 9000;
  bool Quiet = false;
  std::string MetricsJsonl;
  int MetricsPort = -1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--iterations=", 0) == 0) {
      Iterations = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + 13, nullptr, 10));
    } else if (Arg.rfind("--seed=", 0) == 0) {
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg.rfind("--metrics-jsonl=", 0) == 0 &&
               Arg.size() > 16) {
      MetricsJsonl = Arg.substr(16);
    } else if (Arg.rfind("--metrics-port=", 0) == 0 &&
               Arg.size() > 15) {
      unsigned long P = std::strtoul(Arg.c_str() + 15, nullptr, 10);
      if (P > 65535) {
        std::fprintf(stderr, "--metrics-port needs a port in [0, 65535]\n");
        return 1;
      }
      MetricsPort = static_cast<int>(P);
    } else {
      std::fprintf(stderr,
                   "usage: swp_stress [--iterations=N] [--seed=S] "
                   "[--quiet] [--metrics-jsonl=FILE] [--metrics-port=N]\n");
      return 1;
    }
  }

  // Telemetry: one snapshot line per iteration, plus a live RSS gauge so
  // the JSONL doubles as the soak's memory trajectory.
  std::optional<metrics::MetricsSink> Sink;
  std::optional<metrics::MetricsServer> Server;
  if (!MetricsJsonl.empty() || MetricsPort >= 0) {
    metrics::setEnabled(true);
    metrics::MetricsRegistry::global().registerGauge(
        "swp_process_rss_mib", "", "Resident set size of this process",
        [] { return rssMiB(); });
  }
  if (!MetricsJsonl.empty()) {
    metrics::MetricsSink::Config MC;
    MC.Path = MetricsJsonl;
    MC.IntervalMs = 0; // Explicit flushNow() per iteration below.
    Sink.emplace(MC);
    if (!Sink->ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", MetricsJsonl.c_str(),
                   Sink->error().c_str());
      return 1;
    }
  }
  if (MetricsPort >= 0) {
    metrics::MetricsServer::Config MC;
    MC.Port = static_cast<uint16_t>(MetricsPort);
    Server.emplace(MC);
    if (!Server->ok()) {
      std::fprintf(stderr, "cannot serve metrics: %s\n",
                   Server->error().c_str());
      return 1;
    }
    std::printf("swp_stress: metrics on 127.0.0.1:%u\n",
                static_cast<unsigned>(Server->port()));
    std::fflush(stdout);
  }

  // Seed-parity target mix: half the iterations compile for the Warp
  // cell, half for its doubled-resource variant, so the per-target
  // metric split always sees a mixed fleet. Parity rides the IterSeed,
  // so the printed repro line lands on the same machine.
  MachineDescription MDs[2] = {MachineDescription::warpCell(),
                               MachineDescription::scaledWarpCell(2)};
  unsigned Failures = 0;
  uint64_t Scrapes = 0;
  double LastSearches = -1.0;
  double BaselineRss = 0.0;
  const unsigned ReportEvery =
      Iterations >= 10 ? Iterations / 10 : Iterations + 1;

  for (unsigned I = 0; I < Iterations; ++I) {
    uint64_t IterSeed = Seed + I;
    const MachineDescription &MD = MDs[IterSeed % 2];
    std::string Mode;
    std::string Err = runIteration(IterSeed, MD, Mode);
    if (!Err.empty()) {
      ++Failures;
      std::fprintf(stderr,
                   "FAIL iter %u (mode %s): %s\n  repro: swp_stress "
                   "--seed=%llu --iterations=1\n",
                   I, Mode.c_str(), Err.c_str(),
                   static_cast<unsigned long long>(IterSeed));
    }
    // RSS baseline after warm-up (allocator pools, lazy statics); growth
    // past it by more than the threshold reads as a leak.
    if (I == 9 || (I == Iterations - 1 && BaselineRss == 0.0))
      BaselineRss = rssMiB();
    if (!Quiet && (I + 1) % ReportEvery == 0)
      std::printf("swp_stress: %u/%u iterations, %u failures, rss %.1f "
                  "MiB\n",
                  I + 1, Iterations, Failures, rssMiB());
    if (Sink)
      Sink->flushNow();

    // Live-scraper consistency: every iteration scrapes its own endpoint
    // and cross-checks what a fleet collector would see.
    if (Server) {
      std::string Body = scrapeMetrics(Server->port(), "/metrics");
      ++Scrapes;
      if (Body.empty()) {
        ++Failures;
        std::fprintf(stderr, "FAIL iter %u: /metrics scrape failed\n", I);
      } else {
        double Rss = promValue(Body, "swp_process_rss_mib");
        if (Rss <= 0.0) {
          ++Failures;
          std::fprintf(stderr,
                       "FAIL iter %u: RSS gauge missing or nonpositive "
                       "(%.3f)\n",
                       I, Rss);
        }
        double Searches = promValue(Body, "swp_sched_searches_total");
        if (Searches < LastSearches) {
          ++Failures;
          std::fprintf(stderr,
                       "FAIL iter %u: search counter went backwards "
                       "(%.0f -> %.0f)\n",
                       I, LastSearches, Searches);
        }
        LastSearches = Searches;
        // The scrape observes itself (the server counts the request
        // before snapshotting), so the endpoint's own request counter
        // must equal the scrapes this harness has made.
        double Reqs = promValue(
            Body, "swp_metrics_http_requests_total{path=\"metrics\"}");
        if (Reqs != static_cast<double>(Scrapes) ||
            Server->requestsServed() != Scrapes) {
          ++Failures;
          std::fprintf(stderr,
                       "FAIL iter %u: request counters inconsistent with "
                       "live scraper (scrapes %llu, scraped %.0f, served "
                       "%llu)\n",
                       I, static_cast<unsigned long long>(Scrapes), Reqs,
                       static_cast<unsigned long long>(
                           Server->requestsServed()));
        }
      }
    }
  }

  // A mixed-fleet soak long enough to schedule loops on both machines
  // must leave the II-gap histogram split by at least two targets.
  if (Server && Iterations >= 20) {
    std::string Body = scrapeMetrics(Server->port(), "/metrics");
    ++Scrapes;
    unsigned Targets = countTargetLabels(Body, "swp_sched_ii_gap_count");
    if (Targets < 2) {
      ++Failures;
      std::fprintf(stderr,
                   "FAIL: swp_sched_ii_gap split by %u target labels "
                   "(want >= 2)\n",
                   Targets);
    }
  }

  double FinalRss = rssMiB();
  // Sanitizer allocators retain quarantine/redzone/shadow state, so RSS
  // grows linearly with work even when nothing leaks (LeakSanitizer is
  // the leak oracle in those builds); the watch only gates plain builds,
  // where 500 iterations hold within a MiB of the warm baseline.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SWP_STRESS_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SWP_STRESS_UNDER_SANITIZER 1
#endif
#endif
#ifdef SWP_STRESS_UNDER_SANITIZER
  constexpr bool RssWatchArmed = false;
#else
  constexpr bool RssWatchArmed = true;
#endif
  constexpr double RssGrowthLimitMiB = 300.0;
  bool RssBlewUp = RssWatchArmed && BaselineRss > 0.0 &&
                   FinalRss - BaselineRss > RssGrowthLimitMiB;
  if (RssBlewUp)
    std::fprintf(stderr,
                 "FAIL rss grew %.1f MiB (baseline %.1f, final %.1f): "
                 "possible leak\n",
                 FinalRss - BaselineRss, BaselineRss, FinalRss);

  std::printf("swp_stress: %u iterations, %u failures, rss %.1f -> %.1f "
              "MiB\n",
              Iterations, Failures, BaselineRss, FinalRss);
  return (Failures == 0 && !RssBlewUp) ? 0 : 1;
}
