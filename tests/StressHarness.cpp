//===- StressHarness.cpp - long-running stress / soak driver -------------------===//
//
// Part of warp-swp.
//
// The soak harness: a standalone binary that hammers the whole stack —
// random programs, compile budgets, forced degradation rungs, fault
// injection, and the parallel II search — for as many iterations as
// asked, checking correctness (interpreter-vs-simulator differential)
// and resource hygiene (RSS growth) as it goes. Every iteration is
// derived deterministically from a single seed, so any failure prints a
// one-line repro that re-runs exactly that iteration.
//
//   swp_stress [--iterations=N] [--seed=S] [--quiet]
//              [--metrics-jsonl=FILE]
//
// --metrics-jsonl enables the global metrics registry, registers a
// process-RSS gauge, and appends one JSONL snapshot per iteration —
// the soak's resource trajectory, summarizable with
// tools/metrics-report.sh.
//
// ctest wires two instances: `stress_smoke` (a few dozen iterations, part
// of the default suite) and `stress_soak` (500 iterations, label "soak",
// run via `ctest -C soak`, also under the asan/tsan presets).
//
// Exit code: 0 when every iteration passed and RSS stayed bounded, 1
// otherwise.
//
//===----------------------------------------------------------------------===//

#include "swp/API/Session.h"
#include "swp/Metrics/Metrics.h"
#include "swp/Metrics/MetricsSink.h"
#include "swp/Support/FaultInject.h"
#include "swp/Verify/Differential.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <string>

using namespace swp;

namespace {

/// Resident set size in MiB, from /proc/self/statm (Linux; returns 0
/// where unavailable, which disables the growth check).
double rssMiB() {
  FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0.0;
  unsigned long Size = 0, Resident = 0;
  int Got = std::fscanf(F, "%lu %lu", &Size, &Resident);
  std::fclose(F);
  if (Got != 2)
    return 0.0;
  return Resident * 4096.0 / (1024.0 * 1024.0);
}

/// What one iteration exercises. Drawn from the iteration's own RNG so a
/// single-iteration rerun reproduces the mode too.
enum class StressMode : unsigned {
  Plain,        ///< Ordinary differential run.
  Budget,       ///< Tight compile budget; degradation must stay correct.
  ForcedRung,   ///< --min-rung style forced ladder walk.
  Chaos,        ///< One injected fault; compile must fail clean or recover.
  ParallelII,   ///< Multi-threaded II search (sometimes with worker chaos).
  NumModes,
};

const char *modeName(StressMode M) {
  switch (M) {
  case StressMode::Plain:
    return "plain";
  case StressMode::Budget:
    return "budget";
  case StressMode::ForcedRung:
    return "forced-rung";
  case StressMode::Chaos:
    return "chaos";
  case StressMode::ParallelII:
    return "parallel-ii";
  case StressMode::NumModes:
    break;
  }
  return "?";
}

/// Runs one deterministic iteration; returns an empty string on success
/// or a description of the failure.
std::string runIteration(uint64_t IterSeed, const MachineDescription &MD,
                         std::string &ModeOut) {
  std::mt19937_64 Rng(IterSeed);
  auto Mode = static_cast<StressMode>(
      Rng() % static_cast<unsigned>(StressMode::NumModes));
  ModeOut = modeName(Mode);

  RandomLoopOptions Gen; // All features on.
  WorkloadSpec Spec = randomLoopSpec(IterSeed, Gen);
  CompilerOptions Base;

  switch (Mode) {
  case StressMode::Plain:
    break;
  case StressMode::Budget:
    // Tight enough to trip on many generated programs, loose enough that
    // some compiles finish clean: both halves of the ladder get soaked.
    Base.Budget.MaxNodes = 20 + Rng() % 400;
    if (Rng() % 2)
      Base.Budget.MaxIntervals = 1 + Rng() % 8;
    break;
  case StressMode::ForcedRung:
    Base.MinLadderRung = 1 + static_cast<unsigned>(Rng() % 2);
    break;
  case StressMode::Chaos: {
    // One injected fault in a pipelined ParanoidVerify compile: the
    // compiler must either fail with a structured error or recover and
    // produce clean code — never crash, never emit silently-bad code.
    auto Site = static_cast<faults::Site>(Rng() % faults::NumSites);
    unsigned Occurrence = static_cast<unsigned>(Rng() % 4);
    CompilerOptions Opts;
    Opts.ParanoidVerify = true;
    Opts.ChaosSeed = faults::chaosSeed(Site, Occurrence);
    if (Site == faults::Site::WorkerStall ||
        Site == faults::Site::WorkerDeath)
      Opts.Sched.SearchThreads = 2 + static_cast<unsigned>(Rng() % 2);
    BuiltWorkload W = Spec.Make();
    DiagnosticEngine DE;
    // Routed through the session façade (in-place path) so the soak also
    // exercises the public API entry point under fault injection.
    static Session Sess;
    CompileResponse Resp = Sess.compileNow(*W.Prog, MD, &Opts, &DE);
    CompileResult &CR = Resp.Result;
    if (CR.Ok && !CR.Report.VerifyErrors.empty())
      return std::string("chaos site ") + faults::siteName(Site) +
             ": compile reported Ok with verifier findings";
    if (!CR.Ok && CR.Error.empty())
      return std::string("chaos site ") + faults::siteName(Site) +
             ": compile failed without a structured error";
    return "";
  }
  case StressMode::ParallelII:
    Base.Sched.SearchThreads = 2 + static_cast<unsigned>(Rng() % 3);
    if (Rng() % 4 == 0)
      Base.ChaosSeed = faults::chaosSeed(faults::Site::WorkerDeath,
                                         static_cast<unsigned>(Rng() % 2));
    break;
  case StressMode::NumModes:
    break;
  }

  DiffOutcome D = runDifferential(Spec, MD, Base);
  if (!D.Ok)
    return D.Error;
  return "";
}

} // namespace

int main(int argc, char **argv) {
  unsigned Iterations = 100;
  uint64_t Seed = 9000;
  bool Quiet = false;
  std::string MetricsJsonl;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--iterations=", 0) == 0) {
      Iterations = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + 13, nullptr, 10));
    } else if (Arg.rfind("--seed=", 0) == 0) {
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg.rfind("--metrics-jsonl=", 0) == 0 &&
               Arg.size() > 16) {
      MetricsJsonl = Arg.substr(16);
    } else {
      std::fprintf(stderr,
                   "usage: swp_stress [--iterations=N] [--seed=S] "
                   "[--quiet] [--metrics-jsonl=FILE]\n");
      return 1;
    }
  }

  // Telemetry: one snapshot line per iteration, plus a live RSS gauge so
  // the JSONL doubles as the soak's memory trajectory.
  std::optional<metrics::MetricsSink> Sink;
  if (!MetricsJsonl.empty()) {
    metrics::setEnabled(true);
    metrics::MetricsRegistry::global().registerGauge(
        "swp_process_rss_mib", "", "Resident set size of this process",
        [] { return rssMiB(); });
    metrics::MetricsSink::Config MC;
    MC.Path = MetricsJsonl;
    MC.IntervalMs = 0; // Explicit flushNow() per iteration below.
    Sink.emplace(MC);
    if (!Sink->ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", MetricsJsonl.c_str(),
                   Sink->error().c_str());
      return 1;
    }
  }

  MachineDescription MD = MachineDescription::warpCell();
  unsigned Failures = 0;
  double BaselineRss = 0.0;
  const unsigned ReportEvery =
      Iterations >= 10 ? Iterations / 10 : Iterations + 1;

  for (unsigned I = 0; I < Iterations; ++I) {
    uint64_t IterSeed = Seed + I;
    std::string Mode;
    std::string Err = runIteration(IterSeed, MD, Mode);
    if (!Err.empty()) {
      ++Failures;
      std::fprintf(stderr,
                   "FAIL iter %u (mode %s): %s\n  repro: swp_stress "
                   "--seed=%llu --iterations=1\n",
                   I, Mode.c_str(), Err.c_str(),
                   static_cast<unsigned long long>(IterSeed));
    }
    // RSS baseline after warm-up (allocator pools, lazy statics); growth
    // past it by more than the threshold reads as a leak.
    if (I == 9 || (I == Iterations - 1 && BaselineRss == 0.0))
      BaselineRss = rssMiB();
    if (!Quiet && (I + 1) % ReportEvery == 0)
      std::printf("swp_stress: %u/%u iterations, %u failures, rss %.1f "
                  "MiB\n",
                  I + 1, Iterations, Failures, rssMiB());
    if (Sink)
      Sink->flushNow();
  }

  double FinalRss = rssMiB();
  // Sanitizer allocators retain quarantine/redzone/shadow state, so RSS
  // grows linearly with work even when nothing leaks (LeakSanitizer is
  // the leak oracle in those builds); the watch only gates plain builds,
  // where 500 iterations hold within a MiB of the warm baseline.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SWP_STRESS_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SWP_STRESS_UNDER_SANITIZER 1
#endif
#endif
#ifdef SWP_STRESS_UNDER_SANITIZER
  constexpr bool RssWatchArmed = false;
#else
  constexpr bool RssWatchArmed = true;
#endif
  constexpr double RssGrowthLimitMiB = 300.0;
  bool RssBlewUp = RssWatchArmed && BaselineRss > 0.0 &&
                   FinalRss - BaselineRss > RssGrowthLimitMiB;
  if (RssBlewUp)
    std::fprintf(stderr,
                 "FAIL rss grew %.1f MiB (baseline %.1f, final %.1f): "
                 "possible leak\n",
                 FinalRss - BaselineRss, BaselineRss, FinalRss);

  std::printf("swp_stress: %u iterations, %u failures, rss %.1f -> %.1f "
              "MiB\n",
              Iterations, Failures, BaselineRss, FinalRss);
  return (Failures == 0 && !RssBlewUp) ? 0 : 1;
}
