//===- LangTests.cpp - mini-W2 frontend tests ---------------------------------===//
//
// Part of warp-swp.
//
//===----------------------------------------------------------------------===//

#include "swp/Lang/Lowering.h"

#include "swp/IR/Expansion.h"

#include "swp/IR/Printer.h"
#include "swp/IR/Verifier.h"
#include "swp/Interp/Interpreter.h"
#include "swp/Support/RNG.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace swp;

namespace {

/// Compiles source; hard-fails the test on diagnostics.
W2Module mustCompile(const std::string &Source) {
  DiagnosticEngine DE;
  std::optional<W2Module> Mod = compileW2Source(Source, DE);
  EXPECT_TRUE(Mod.has_value()) << DE.str();
  if (!Mod)
    return W2Module{};
  DiagnosticEngine VDE;
  EXPECT_TRUE(verifyProgram(Mod->Prog, VDE)) << VDE.str();
  return std::move(*Mod);
}

/// Expects compilation to fail with a message containing \p Needle.
void mustFail(const std::string &Source, const std::string &Needle) {
  DiagnosticEngine DE;
  std::optional<W2Module> Mod = compileW2Source(Source, DE);
  EXPECT_FALSE(Mod.has_value()) << "program should not compile";
  EXPECT_NE(DE.str().find(Needle), std::string::npos)
      << "expected a diagnostic mentioning '" << Needle << "', got:\n"
      << DE.str();
}

} // namespace

TEST(Lexer, TokensAndComments) {
  DiagnosticEngine DE;
  auto Toks = lexW2("for i := 0 to 9 (* note *) do -- tail\n x <> 1.5e2",
                    DE);
  ASSERT_FALSE(DE.hasErrors()) << DE.str();
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  EXPECT_EQ(Kinds, (std::vector<TokKind>{
                       TokKind::KwFor, TokKind::Ident, TokKind::Assign,
                       TokKind::IntLit, TokKind::KwTo, TokKind::IntLit,
                       TokKind::KwDo, TokKind::Ident, TokKind::NotEqual,
                       TokKind::FloatLit, TokKind::Eof}));
  EXPECT_DOUBLE_EQ(Toks[9].FloatVal, 150.0);
}

TEST(Lexer, PositionsAndErrors) {
  DiagnosticEngine DE;
  auto Toks = lexW2("a\n  @b", DE);
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_NE(DE.str().find("2:3"), std::string::npos) << DE.str();
  // The 'b' after the bad character still lexes.
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
}

TEST(Frontend, VectorAddCompilesAndRuns) {
  W2Module Mod = mustCompile(R"(
    var a: float[16];
    param k: float;
    begin
      for i := 0 to 15 do
        a[i] := a[i] + k;
    end
  )");
  ProgramInput In;
  In.FloatScalars[Mod.Params.at("k").Id] = 1.5f;
  unsigned A = Mod.Arrays.at("a");
  for (int I = 0; I != 16; ++I)
    In.FloatArrays[A].push_back(static_cast<float>(I));
  ProgramState S = interpret(Mod.Prog, In);
  ASSERT_TRUE(S.Ok) << S.Error;
  for (int I = 0; I != 16; ++I)
    EXPECT_FLOAT_EQ(S.FloatArrays[A][I], I + 1.5f);
}

TEST(Frontend, AffineSubscriptsStaySymbolic) {
  W2Module Mod = mustCompile(R"(
    var m: float[64];
    begin
      for i := 0 to 7 do
        for j := 0 to 7 do
          m[i*8 + j] := m[8*i + j] * 2.0;
    end
  )");
  std::ostringstream OS;
  printProgram(Mod.Prog, OS);
  // Both references print as affine subscripts over both loops.
  EXPECT_NE(OS.str().find("8*i0 + i1"), std::string::npos) << OS.str();
}

TEST(Frontend, DynamicSubscriptUsesAddend) {
  W2Module Mod = mustCompile(R"(
    var idx: int[32];
    var hist: float[8];
    begin
      for i := 0 to 31 do
        hist[idx[i]] := hist[idx[i]] + 1.0;
    end
  )");
  bool SawAddend = false;
  forEachStmt(Mod.Prog.Body, [&](const Stmt &S) {
    if (const auto *Op = dyn_cast<OpStmt>(&S))
      if (Op->Op.Mem.isValid() && Op->Op.Mem.Index.hasAddend())
        SawAddend = true;
  });
  EXPECT_TRUE(SawAddend);
}

TEST(Frontend, AccumulatorFusesIntoRecurrence) {
  W2Module Mod = mustCompile(R"(
    var x: float[32];
    var out: float[1];
    var acc: float;
    begin
      acc := 0.0;
      for i := 0 to 31 do
        acc := acc + x[i];
      out[0] := acc;
    end
  )");
  // acc := acc + x[i] must lower to a single fadd writing acc, not an
  // fadd plus a move (the move would stretch the recurrence cycle).
  unsigned MovCount = 0;
  forEachStmt(Mod.Prog.Body, [&](const Stmt &S) {
    if (const auto *Op = dyn_cast<OpStmt>(&S))
      if (Op->Op.Opc == Opcode::FMov)
        ++MovCount;
  });
  EXPECT_EQ(MovCount, 1u) << "only the initial 'acc := 0.0' move remains";
}

TEST(Frontend, ConditionalsAndBuiltins) {
  W2Module Mod = mustCompile(R"(
    var x: float[16];
    var y: float[16];
    begin
      for i := 0 to 15 do begin
        if x[i] < 0.0 then
          y[i] := -x[i]
        else
          y[i] := sqrt(x[i]);
      end
    end
  )");
  expandLibraryOps(Mod.Prog); // sqrt must be lowered before execution
  ProgramInput In;
  unsigned X = Mod.Arrays.at("x"), Y = Mod.Arrays.at("y");
  In.FloatArrays[X] = {-4.0f, 9.0f, -1.0f, 16.0f};
  ProgramState S = interpret(Mod.Prog, In);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_FLOAT_EQ(S.FloatArrays[Y][0], 4.0f);
  EXPECT_NEAR(S.FloatArrays[Y][1], 3.0f, 1e-4);
  EXPECT_FLOAT_EQ(S.FloatArrays[Y][2], 1.0f);
  EXPECT_NEAR(S.FloatArrays[Y][3], 4.0f, 1e-4);
}

TEST(Frontend, RuntimeBoundsAndQueues) {
  W2Module Mod = mustCompile(R"(
    param n: int;
    begin
      for i := 1 to n do
        send(recv() * 2.0);
    end
  )");
  ProgramInput In;
  In.IntScalars[Mod.Params.at("n").Id] = 3;
  In.InputQueue = {1.0f, 2.0f, 3.0f, 99.0f};
  ProgramState S = interpret(Mod.Prog, In);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.OutputQueue, (std::vector<float>{2.0f, 4.0f, 6.0f}));
}

TEST(Frontend, IntegerArithmeticAndConversion) {
  W2Module Mod = mustCompile(R"(
    var a: float[8];
    begin
      for i := 0 to 7 do
        a[i] := float(i * 3 - 1);
    end
  )");
  ProgramState S = interpret(Mod.Prog, {});
  ASSERT_TRUE(S.Ok) << S.Error;
  unsigned A = Mod.Arrays.at("a");
  for (int I = 0; I != 8; ++I)
    EXPECT_FLOAT_EQ(S.FloatArrays[A][I], 3.0f * I - 1.0f);
}

TEST(Frontend, GreaterComparisonSwaps) {
  W2Module Mod = mustCompile(R"(
    var x: float[4];
    var y: float[4];
    begin
      for i := 0 to 3 do
        if x[i] > 1.0 then y[i] := 1.0 else y[i] := 0.0;
    end
  )");
  ProgramInput In;
  unsigned X = Mod.Arrays.at("x"), Y = Mod.Arrays.at("y");
  In.FloatArrays[X] = {0.5f, 1.0f, 1.5f, 2.0f};
  ProgramState S = interpret(Mod.Prog, In);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.FloatArrays[Y], (std::vector<float>{0, 0, 1, 1}));
}

//===----------------------------------------------------------------------===//
// Diagnostics.
//===----------------------------------------------------------------------===//

TEST(FrontendErrors, UndeclaredName) {
  mustFail("begin x := 1.0; end", "undeclared");
}

TEST(FrontendErrors, TypeMismatch) {
  mustFail(R"(
    var a: float[4];
    begin
      for i := 0 to 3 do a[i] := i;
    end
  )", "type mismatch");
}

TEST(FrontendErrors, MixedArithmetic) {
  mustFail(R"(
    var a: float[4];
    begin
      for i := 0 to 3 do a[i] := a[i] + i;
    end
  )", "mixed int/float");
}

TEST(FrontendErrors, ParamReadOnly) {
  mustFail("param k: float; begin k := 1.0; end", "read-only");
}

TEST(FrontendErrors, ArrayNeedsSubscript) {
  mustFail(R"(
    var a: float[4];
    var s: float;
    begin s := a; end
  )", "needs a subscript");
}

TEST(FrontendErrors, ArrayParamRejected) {
  mustFail("param a: float[4]; begin end", "parameters must be scalars");
}

TEST(FrontendErrors, FloatSubscript) {
  mustFail(R"(
    var a: float[4];
    var f: float;
    begin
      f := 0.0;
      a[f] := 1.0;
    end
  )", "subscripts must be integers");
}

TEST(FrontendErrors, FloatLoopBound) {
  mustFail("var a: float[4]; begin for i := 0 to 1.5 do a[0] := 1.0; end",
           "bounds must be integers");
}

TEST(FrontendErrors, MissingSemicolon) {
  mustFail(R"(
    var a: float[4];
    begin
      a[0] := 1.0
      a[1] := 2.0;
    end
  )", "expected ';'");
}

TEST(FrontendErrors, UnknownBuiltin) {
  mustFail("var s: float; begin s := sin(1.0); end", "unknown builtin");
}

TEST(FrontendErrors, UnterminatedComment) {
  mustFail("begin end (* dangling", "unterminated comment");
}

//===----------------------------------------------------------------------===//
// Precedence and robustness.
//===----------------------------------------------------------------------===//

TEST(Frontend, OperatorPrecedence) {
  W2Module Mod = mustCompile(R"(
    var out: float[4];
    begin
      out[0] := 2.0 + 3.0 * 4.0;        -- 14
      out[1] := (2.0 + 3.0) * 4.0;      -- 20
      out[2] := -2.0 * 3.0 + 1.0;       -- -5
      out[3] := 12.0 / 4.0 / 3.0 + 1.0; -- left-assoc: 2
    end
  )");
  expandLibraryOps(Mod.Prog); // '/' lowers via INVERSE.
  ProgramState S = interpret(Mod.Prog, {});
  ASSERT_TRUE(S.Ok) << S.Error;
  unsigned Out = Mod.Arrays.at("out");
  EXPECT_FLOAT_EQ(S.FloatArrays[Out][0], 14.0f);
  EXPECT_FLOAT_EQ(S.FloatArrays[Out][1], 20.0f);
  EXPECT_FLOAT_EQ(S.FloatArrays[Out][2], -5.0f);
  EXPECT_NEAR(S.FloatArrays[Out][3], 2.0f, 1e-4);
}

TEST(Frontend, NoAliasDirectiveParsesAndMarks) {
  W2Module Mod = mustCompile(R"(
    var a: float[8] noalias;
    var b: float[8];
    begin
      a[0] := 1.0;
    end
  )");
  EXPECT_TRUE(Mod.Prog.arrayInfo(Mod.Arrays.at("a")).NoAlias);
  EXPECT_FALSE(Mod.Prog.arrayInfo(Mod.Arrays.at("b")).NoAlias);
}

/// The parser must reject garbage with diagnostics, never crash or hang.
class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, GarbageNeverCrashes) {
  RNG R(31337 + GetParam());
  static const char *Fragments[] = {
      "begin",  "end",  "for",   "to",   "do",    "if",    "then",
      "else",   "var",  "param", ":=",   ";",     ":",     "(",
      ")",      "[",    "]",     "+",    "-",     "*",     "/",
      "<",      "<=",   "<>",    "=",    "x",     "a",     "i",
      "1",      "2.5",  "float", "int",  "send",  "recv",  "sqrt",
      "noalias", ",",   "(*",    "*)",   "--",
  };
  std::string Source;
  unsigned Len = static_cast<unsigned>(R.uniform(1, 60));
  for (unsigned I = 0; I != Len; ++I) {
    Source += Fragments[R.uniform(0, std::size(Fragments) - 1)];
    Source += ' ';
  }
  DiagnosticEngine DE;
  std::optional<W2Module> Mod = compileW2Source(Source, DE);
  if (!Mod)
    EXPECT_TRUE(DE.hasErrors()) << "rejection must come with diagnostics:\n"
                                << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(0, 50));
