//===- CacheTests.cpp - content-addressed cache and compile service -------------===//
//
// Part of warp-swp.
//
// The caching subsystem's acceptance tests: fingerprint canonicalization
// (rename/reorder metamorphics hit, every schedule-relevant input change
// misses), the sharded LRU's budgets, the persistent tier's validation
// (corruption and version staleness rejected, survivors re-verified),
// single-flight dedup in the compile service, and the determinism
// contract — cached, memoized, batched, and disk-served compiles are
// bit-identical to bare compileProgram.
//
//===----------------------------------------------------------------------===//

#include "swp/Codegen/Compiler.h"
#include "swp/DDG/DDGBuilder.h"
#include "swp/IR/IRBuilder.h"
#include "swp/Pipeliner/HierarchicalReducer.h"
#include "swp/Service/CompileService.h"
#include "swp/Service/ScheduleCache.h"
#include "swp/Support/FaultInject.h"
#include "swp/Support/Fingerprint.h"
#include "swp/Support/ThreadPool.h"
#include "swp/Workloads/Workloads.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace swp;

namespace {

/// A pipelinable chain loop; \p SwapDecls reverses the declaration order
/// of the arrays (ids permute, structure does not), \p Renamed only
/// changes names.
std::unique_ptr<Program> chainProgram(bool SwapDecls = false,
                                      bool Renamed = false) {
  auto P = std::make_unique<Program>();
  IRBuilder B(*P);
  unsigned A, C;
  if (SwapDecls) {
    C = P->createArray(Renamed ? "out" : "c", RegClass::Float, 4096);
    A = P->createArray(Renamed ? "in" : "a", RegClass::Float, 4096);
  } else {
    A = P->createArray(Renamed ? "in" : "a", RegClass::Float, 4096);
    C = P->createArray(Renamed ? "out" : "c", RegClass::Float, 4096);
  }
  VReg K = P->createVReg(RegClass::Float, Renamed ? "scale" : "k",
                         /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 1023);
  VReg V = B.fload(A, B.ix(L));
  V = B.fmul(V, K);
  V = B.fadd(V, K);
  V = B.fmul(V, K);
  B.fstore(C, B.ix(L), V);
  B.endFor();
  return P;
}

DepGraph graphFor(Program &P, const MachineDescription &MD) {
  auto *For = cast<ForStmt>(P.Body.back().get());
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = For->LoopId;
  return buildLoopDepGraph(reduceBodyToUnits(For->Body, MD, For->LoopId),
                           MD, Opts);
}

/// A scratch directory under the test working dir, wiped on entry.
std::string freshDir(const std::string &Name) {
  std::filesystem::remove_all(Name);
  return Name;
}

//===----------------------------------------------------------------------===//
// Fingerprint canonicalization
//===----------------------------------------------------------------------===//

TEST(Fingerprint, RenameAndReorderInvariant) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P1 = chainProgram();
  auto P2 = chainProgram(/*SwapDecls=*/true, /*Renamed=*/true);
  DepGraph G1 = graphFor(*P1, MD);
  DepGraph G2 = graphFor(*P2, MD);
  EXPECT_EQ(canonicalizeGraph(G1).FP, canonicalizeGraph(G2).FP)
      << "isomorphic loops must share a canonical fingerprint";
  // The canonical whole-program fingerprint is id-insensitive too...
  EXPECT_EQ(fingerprintProgram(*P1), fingerprintProgram(*P2));
  // ...but the exact one (the result-memo key) must see the id swap:
  // emitted code addresses arrays by id.
  EXPECT_NE(fingerprintProgramExact(*P1), fingerprintProgramExact(*P2));
  EXPECT_EQ(fingerprintProgramExact(*P1),
            fingerprintProgramExact(*chainProgram(false, true)));
}

TEST(Fingerprint, StructuralChangeChangesGraphFingerprint) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P1 = chainProgram();
  auto P2 = std::make_unique<Program>();
  {
    IRBuilder B(*P2);
    unsigned A = P2->createArray("a", RegClass::Float, 4096);
    unsigned C = P2->createArray("c", RegClass::Float, 4096);
    VReg K = P2->createVReg(RegClass::Float, "k", /*LiveIn=*/true);
    ForStmt *L = B.beginForImm(0, 1023);
    VReg V = B.fload(A, B.ix(L));
    V = B.fmul(V, K);
    V = B.fadd(V, K);
    V = B.fadd(V, K); // one extra op
    V = B.fmul(V, K);
    B.fstore(C, B.ix(L), V);
    B.endFor();
  }
  DepGraph G1 = graphFor(*P1, MD);
  DepGraph G2 = graphFor(*P2, MD);
  EXPECT_NE(canonicalizeGraph(G1).FP, canonicalizeGraph(G2).FP);
}

TEST(Fingerprint, EdgeAnnotationSensitivity) {
  // Any change to an edge's (d, p) annotation is a different constraint
  // system and must repel the fingerprint.
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph Base = graphFor(*P, MD);
  Fingerprint FP0 = canonicalizeGraph(Base).FP;
  for (auto [Delay, Omega] : {std::pair<int, unsigned>{3, 1},
                              {4, 1},
                              {3, 2}}) {
    DepGraph G = graphFor(*P, MD);
    G.addEdge({/*Src=*/0, /*Dst=*/static_cast<unsigned>(G.numNodes() - 1),
               Delay, Omega, DepKind::Mem});
    EXPECT_NE(canonicalizeGraph(G).FP, FP0)
        << "added edge (d=" << Delay << ", p=" << Omega << ")";
  }
  // Same (d, p), different kind: same constraint system, same key.
  DepGraph GA = graphFor(*P, MD);
  GA.addEdge({0, static_cast<unsigned>(GA.numNodes() - 1), 3, 1,
              DepKind::Mem});
  DepGraph GB = graphFor(*P, MD);
  GB.addEdge({0, static_cast<unsigned>(GB.numNodes() - 1), 3, 1,
              DepKind::Anti});
  EXPECT_EQ(canonicalizeGraph(GA).FP, canonicalizeGraph(GB).FP);
}

TEST(Fingerprint, MachineSensitivity) {
  MachineDescription Base = MachineDescription::warpCell();
  Fingerprint FP0 = fingerprintMachine(Base);

  MachineDescription Lat = MachineDescription::warpCell();
  OpcodeInfo Info = Lat.opcodeInfo(Opcode::FAdd);
  Info.Latency += 1;
  Lat.setOpcodeInfo(Opcode::FAdd, Info);
  EXPECT_NE(fingerprintMachine(Lat), FP0) << "latency change must miss";

  MachineDescription Res = MachineDescription::warpCell();
  Res.addResource("extra", 2);
  EXPECT_NE(fingerprintMachine(Res), FP0) << "resource change must miss";

  MachineDescription Regs = MachineDescription::warpCell();
  Regs.setRegisterFileSizes(Regs.registerFileSize(RegClass::Float) + 1,
                            Regs.registerFileSize(RegClass::Int));
  EXPECT_NE(fingerprintMachine(Regs), FP0) << "register file change must miss";

  // Labels and clock scale reports, never schedules.
  MachineDescription Cosmetic = MachineDescription::warpCell();
  Cosmetic.setName("renamed");
  Cosmetic.setClockMHz(123.0);
  EXPECT_EQ(fingerprintMachine(Cosmetic), FP0);
}

TEST(Fingerprint, OptionSensitivity) {
  CompilerOptions Base;
  Fingerprint FP0 = fingerprintScheduleOptions(Base);
  unsigned Changed = 0;
  auto expectDiffers = [&](auto Mutate, const char *What) {
    CompilerOptions O;
    Mutate(O);
    EXPECT_NE(fingerprintScheduleOptions(O), FP0) << What;
    ++Changed;
  };
  expectDiffers([](CompilerOptions &O) { O.EnablePipelining = false; },
                "EnablePipelining");
  expectDiffers([](CompilerOptions &O) { O.MVE = MVEPolicy::MinRegisters; },
                "MVE");
  expectDiffers([](CompilerOptions &O) { O.MaxLoopLenToPipeline = 7; },
                "MaxLoopLenToPipeline");
  expectDiffers([](CompilerOptions &O) { O.EfficiencyThreshold = 0.5; },
                "EfficiencyThreshold");
  expectDiffers([](CompilerOptions &O) { O.MaxUnroll = 2; }, "MaxUnroll");
  expectDiffers([](CompilerOptions &O) { O.ScalarOptimizations = false; },
                "ScalarOptimizations");
  expectDiffers([](CompilerOptions &O) { O.PipelineConditionalLoops = false; },
                "PipelineConditionalLoops");
  expectDiffers([](CompilerOptions &O) { O.MinLadderRung = 1; },
                "MinLadderRung");
  expectDiffers([](CompilerOptions &O) { O.Sched.BinarySearch = true; },
                "Sched.BinarySearch");
  expectDiffers([](CompilerOptions &O) { O.Sched.MaxStages = 3; },
                "Sched.MaxStages");
  expectDiffers([](CompilerOptions &O) { O.Sched.MaxII = 5; },
                "Sched.MaxII");
  EXPECT_EQ(Changed, 11u);

  // Excluded knobs: execution strategy and report shape, not schedules.
  CompilerOptions Same;
  Same.Sched.SearchThreads = 4;
  Same.ParanoidVerify = true;
  Same.Explain = true;
  Same.ChaosSeed = 42;
  Same.Budget.WallMs = 1000;
  EXPECT_EQ(fingerprintScheduleOptions(Same), FP0);
}

//===----------------------------------------------------------------------===//
// ScheduleCache: LRU, budgets, persistence
//===----------------------------------------------------------------------===//

TEST(ScheduleCache, HitRoundTripsTheSchedule) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph G = graphFor(*P, MD);
  CanonicalGraph CG = canonicalizeGraph(G);
  ModuloScheduleResult MS = moduloSchedule(G, MD);
  ASSERT_TRUE(MS.Success);

  ScheduleCache Cache;
  Fingerprint Key = combineFingerprints({CG.FP, fingerprintMachine(MD)});
  Cache.insert(Key, CG, MS);
  auto LR = Cache.lookup(Key, CG, G, MD, /*MaxStages=*/0);
  ASSERT_TRUE(LR.Result.has_value());
  EXPECT_EQ(LR.Result->II, MS.II);
  EXPECT_EQ(LR.Result->MII, MS.MII);
  EXPECT_EQ(LR.Result->Stages, MS.Stages);
  for (unsigned I = 0; I != G.numNodes(); ++I)
    EXPECT_EQ(LR.Result->Sched.startOf(I), MS.Sched.startOf(I));
  EXPECT_EQ(Cache.stats().Hits, 1u);
  EXPECT_EQ(Cache.stats().Misses, 0u);
}

TEST(ScheduleCache, LruEvictionUnderEntryCap) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph G = graphFor(*P, MD);
  CanonicalGraph CG = canonicalizeGraph(G);
  ModuloScheduleResult MS = moduloSchedule(G, MD);
  ASSERT_TRUE(MS.Success);

  ScheduleCacheConfig Config;
  Config.Shards = 1;
  Config.MaxEntries = 2;
  ScheduleCache Cache(Config);
  Fingerprint K1{1, 1}, K2{2, 2}, K3{3, 3};
  Cache.insert(K1, CG, MS);
  Cache.insert(K2, CG, MS);
  // Touch K1 so K2 is the LRU victim.
  EXPECT_TRUE(Cache.lookup(K1, CG, G, MD, 0).Result.has_value());
  Cache.insert(K3, CG, MS);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_EQ(Cache.stats().Entries, 2u);
  EXPECT_TRUE(Cache.lookup(K1, CG, G, MD, 0).Result.has_value());
  EXPECT_FALSE(Cache.lookup(K2, CG, G, MD, 0).Result.has_value());
  EXPECT_TRUE(Cache.lookup(K3, CG, G, MD, 0).Result.has_value());
}

TEST(ScheduleCache, ByteBudgetEvicts) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph G = graphFor(*P, MD);
  CanonicalGraph CG = canonicalizeGraph(G);
  ModuloScheduleResult MS = moduloSchedule(G, MD);
  ASSERT_TRUE(MS.Success);

  ScheduleCacheConfig Config;
  Config.Shards = 1;
  Config.MaxBytes = 1; // one entry always over budget; floor keeps one
  ScheduleCache Cache(Config);
  Cache.insert(Fingerprint{1, 1}, CG, MS);
  Cache.insert(Fingerprint{2, 2}, CG, MS);
  EXPECT_GE(Cache.stats().Evictions, 1u);
  EXPECT_EQ(Cache.stats().Entries, 1u);
}

TEST(ScheduleCache, BudgetExhaustedNeverInserted) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph G = graphFor(*P, MD);
  CanonicalGraph CG = canonicalizeGraph(G);
  ModuloScheduleResult MS = moduloSchedule(G, MD);
  MS.BudgetExhausted = true;
  ScheduleCache Cache;
  Cache.insert(Fingerprint{9, 9}, CG, MS);
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_FALSE(Cache.lookup(Fingerprint{9, 9}, CG, G, MD, 0)
                   .Result.has_value());
}

TEST(ScheduleCache, NegativeEntriesCacheFailures) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph G = graphFor(*P, MD);
  CanonicalGraph CG = canonicalizeGraph(G);
  ModuloScheduleResult Fail;
  Fail.Success = false;
  Fail.MII = 4;
  Fail.TriedIntervals = 7;
  ScheduleCache Cache;
  Cache.insert(Fingerprint{5, 5}, CG, Fail);
  auto LR = Cache.lookup(Fingerprint{5, 5}, CG, G, MD, 0);
  ASSERT_TRUE(LR.Result.has_value());
  EXPECT_FALSE(LR.Result->Success);
  EXPECT_EQ(LR.Result->MII, 4u);
  EXPECT_EQ(LR.Result->TriedIntervals, 7u);
}

//===----------------------------------------------------------------------===//
// AdaptivePolicy: the self-tuning budget controller, driven by a
// test-scripted clock so every rebalance is deterministic.
//===----------------------------------------------------------------------===//

/// Shared fixture state for the adaptive tests: one scheduled loop whose
/// result seeds every insert, plus a hand-advanced clock.
struct AdaptiveHarness {
  MachineDescription MD = MachineDescription::warpCell();
  std::unique_ptr<Program> P = chainProgram();
  DepGraph G;
  CanonicalGraph CG;
  ModuloScheduleResult MS;
  uint64_t NowMs = 0;
  uint64_t NextKey = 1;

  AdaptiveHarness() : G(graphFor(*P, MD)), CG(canonicalizeGraph(G)) {
    MS = moduloSchedule(G, MD);
    EXPECT_TRUE(MS.Success);
  }

  AdaptiveCachePolicy policy() {
    AdaptiveCachePolicy A;
    A.Enabled = true;
    A.ClockMs = [this] { return NowMs; };
    A.IntervalMs = 10;
    A.MinSamples = 2;
    A.FloorBytes = 1u << 10;
    A.CeilingBytes = 64u << 20;
    return A;
  }

  /// One miss-then-insert on a never-seen key.
  void missAndInsert(ScheduleCache &Cache) {
    Fingerprint K{NextKey, NextKey};
    ++NextKey;
    EXPECT_FALSE(Cache.lookup(K, CG, G, MD, 0).Result.has_value());
    Cache.insert(K, CG, MS);
  }
};

TEST(ScheduleCache, AdaptiveGrowsMonotonicallyUnderEvictionPressure) {
  AdaptiveHarness H;
  ScheduleCacheConfig Config;
  Config.Shards = 1;
  Config.MaxEntries = 4;
  Config.Adaptive = H.policy();
  Config.Adaptive.FloorEntries = 4;
  Config.Adaptive.CeilingEntries = 16;
  ScheduleCache Cache(Config);
  EXPECT_EQ(Cache.budgetEntries(), 4u);

  // Every window overflows the entry budget (8 fresh keys against a
  // budget of at most 16), so each rebalance must grow — monotonically,
  // by StepPercent, never past the ceiling.
  size_t Prev = Cache.budgetEntries();
  for (int Round = 0; Round != 12; ++Round) {
    for (int I = 0; I != 8; ++I)
      H.missAndInsert(Cache);
    H.NowMs += Config.Adaptive.IntervalMs;
    H.missAndInsert(Cache); // First traffic after the tick rebalances.
    size_t Cur = Cache.budgetEntries();
    EXPECT_GE(Cur, Prev) << "round " << Round
                         << ": growth must be monotone under pressure";
    EXPECT_LE(Cur, 16u) << "budget must respect the ceiling";
    EXPECT_LE(Cache.budgetBytes(), 64u << 20);
    Prev = Cur;
  }
  EXPECT_EQ(Cache.budgetEntries(), 16u)
      << "sustained pressure converges to the ceiling";
  EXPECT_GT(Cache.adaptations(), 0u);
  // The cache held the live budget, not the configured one.
  EXPECT_LE(Cache.stats().Entries, 16u);
  EXPECT_GT(Cache.stats().Entries, 4u);
}

TEST(ScheduleCache, AdaptiveShrinksToFloorAndNeverEvictsBelowIt) {
  AdaptiveHarness H;
  ScheduleCacheConfig Config;
  Config.Shards = 1;
  Config.MaxEntries = 64;
  Config.Adaptive = H.policy();
  Config.Adaptive.FloorEntries = 8;
  Config.Adaptive.CeilingEntries = 64;
  ScheduleCache Cache(Config);
  EXPECT_EQ(Cache.budgetEntries(), 64u);

  // Two residents, all traffic hits: the tier is oversized, so every
  // window must shrink the budgets — monotonically, never below floor.
  Fingerprint K1{1001, 1001}, K2{1002, 1002};
  Cache.insert(K1, H.CG, H.MS);
  Cache.insert(K2, H.CG, H.MS);
  size_t Prev = Cache.budgetEntries();
  for (int Round = 0; Round != 12; ++Round) {
    for (int I = 0; I != 4; ++I)
      EXPECT_TRUE(Cache.lookup(K1, H.CG, H.G, H.MD, 0).Result.has_value());
    H.NowMs += Config.Adaptive.IntervalMs;
    EXPECT_TRUE(Cache.lookup(K2, H.CG, H.G, H.MD, 0).Result.has_value());
    size_t Cur = Cache.budgetEntries();
    EXPECT_LE(Cur, Prev) << "round " << Round
                         << ": shrink must be monotone while oversized";
    EXPECT_GE(Cur, 8u) << "budget must respect the floor";
    EXPECT_GE(Cache.budgetBytes(), 1u << 10);
    Prev = Cur;
  }
  EXPECT_EQ(Cache.budgetEntries(), 8u) << "idle cache converges to the floor";

  // Pressure against the floored budget evicts down to the floor,
  // never through it.
  for (int I = 0; I != 12; ++I)
    H.missAndInsert(Cache);
  EXPECT_EQ(Cache.stats().Entries, 8u);
  EXPECT_GT(Cache.stats().Evictions, 0u);
}

TEST(ScheduleCache, AdaptiveRespectsIntervalAndMinSamples) {
  AdaptiveHarness H;
  ScheduleCacheConfig Config;
  Config.Shards = 1;
  Config.MaxEntries = 4;
  Config.Adaptive = H.policy();
  Config.Adaptive.FloorEntries = 4;
  Config.Adaptive.CeilingEntries = 32;
  Config.Adaptive.MinSamples = 100;
  ScheduleCache Cache(Config);

  // Heavy pressure with a frozen clock: no rebalance, ever.
  for (int I = 0; I != 20; ++I)
    H.missAndInsert(Cache);
  EXPECT_EQ(Cache.adaptations(), 0u);
  EXPECT_EQ(Cache.budgetEntries(), 4u);

  // The interval elapses but the window is under MinSamples: still no
  // rebalance — the window keeps accumulating instead of resetting.
  H.NowMs += Config.Adaptive.IntervalMs;
  Fingerprint K{2001, 2001};
  Cache.insert(K, H.CG, H.MS);
  EXPECT_TRUE(Cache.lookup(K, H.CG, H.G, H.MD, 0).Result.has_value());
  EXPECT_EQ(Cache.adaptations(), 0u);

  // Enough samples arrive: exactly one rebalance fires, and it saw the
  // accumulated evictions, so it grew.
  for (int I = 0; I != 100; ++I)
    EXPECT_TRUE(Cache.lookup(K, H.CG, H.G, H.MD, 0).Result.has_value());
  EXPECT_EQ(Cache.adaptations(), 1u);
  EXPECT_GT(Cache.budgetEntries(), 4u);
}

TEST(ScheduleCache, AdaptiveDisabledIsBitIdenticalToStaticBudgets) {
  AdaptiveHarness H;
  ScheduleCacheConfig Static;
  Static.Shards = 1;
  Static.MaxEntries = 4;
  ScheduleCacheConfig Disabled = Static;
  Disabled.Adaptive = H.policy();
  Disabled.Adaptive.Enabled = false; // Configured but off.
  ScheduleCache A(Static), B(Disabled);

  // An identical scripted sequence (misses, inserts, hits, evictions)
  // must leave both caches in exactly the same observable state.
  for (uint64_t I = 1; I != 40; ++I) {
    Fingerprint K{I % 7, I % 7};
    auto RA = A.lookup(K, H.CG, H.G, H.MD, 0);
    auto RB = B.lookup(K, H.CG, H.G, H.MD, 0);
    ASSERT_EQ(RA.Result.has_value(), RB.Result.has_value()) << "step " << I;
    if (RA.Result.has_value()) {
      EXPECT_EQ(RA.Result->II, RB.Result->II);
      for (unsigned N = 0; N != H.G.numNodes(); ++N)
        EXPECT_EQ(RA.Result->Sched.startOf(N), RB.Result->Sched.startOf(N));
    } else {
      EXPECT_EQ(A.insert(K, H.CG, H.MS), B.insert(K, H.CG, H.MS));
    }
    H.NowMs += 100; // Even with time passing, a disabled policy is inert.
  }
  EXPECT_EQ(A.stats().toJson(), B.stats().toJson());
  EXPECT_EQ(B.budgetEntries(), Disabled.MaxEntries);
  EXPECT_EQ(B.budgetBytes(), Disabled.MaxBytes);
  EXPECT_EQ(B.adaptations(), 0u);
}

TEST(ScheduleCache, PersistentTierRoundTrip) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph G = graphFor(*P, MD);
  CanonicalGraph CG = canonicalizeGraph(G);
  ModuloScheduleResult MS = moduloSchedule(G, MD);
  ASSERT_TRUE(MS.Success);
  Fingerprint Key = combineFingerprints({CG.FP, fingerprintMachine(MD)});

  ScheduleCacheConfig Config;
  Config.Dir = freshDir("cache_test_roundtrip");
  {
    ScheduleCache Writer(Config);
    Writer.insert(Key, CG, MS);
    EXPECT_EQ(Writer.stats().DiskStores, 1u);
  }
  ScheduleCache Reader(Config); // fresh memory, same directory
  auto LR = Reader.lookup(Key, CG, G, MD, 0);
  ASSERT_TRUE(LR.Result.has_value());
  EXPECT_TRUE(LR.FromDisk);
  EXPECT_EQ(LR.Result->II, MS.II);
  for (unsigned I = 0; I != G.numNodes(); ++I)
    EXPECT_EQ(LR.Result->Sched.startOf(I), MS.Sched.startOf(I));
  EXPECT_EQ(Reader.stats().DiskHits, 1u);
  // The hit was promoted into memory: a second lookup is served there.
  auto LR2 = Reader.lookup(Key, CG, G, MD, 0);
  ASSERT_TRUE(LR2.Result.has_value());
  EXPECT_FALSE(LR2.FromDisk);
}

TEST(ScheduleCache, CorruptDiskEntryRejected) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph G = graphFor(*P, MD);
  CanonicalGraph CG = canonicalizeGraph(G);
  ModuloScheduleResult MS = moduloSchedule(G, MD);
  ASSERT_TRUE(MS.Success);
  Fingerprint Key{0xabc, 0xdef};

  ScheduleCacheConfig Config;
  Config.Dir = freshDir("cache_test_corrupt");
  { ScheduleCache(Config).insert(Key, CG, MS); }

  // Flip one byte in the middle of the entry file.
  std::string Path = Config.Dir + "/" + Key.hex() + ".sched";
  {
    std::fstream F(Path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.good()) << Path;
    F.seekg(0, std::ios::end);
    auto Size = static_cast<long>(F.tellg());
    ASSERT_GT(Size, 12);
    F.seekp(Size / 2);
    char C = 0;
    F.seekg(Size / 2);
    F.read(&C, 1);
    C = static_cast<char>(C ^ 0x40);
    F.seekp(Size / 2);
    F.write(&C, 1);
  }
  ScheduleCache Reader(Config);
  auto LR = Reader.lookup(Key, CG, G, MD, 0);
  EXPECT_FALSE(LR.Result.has_value());
  EXPECT_GE(Reader.stats().VerifyRejects, 1u);
  EXPECT_EQ(Reader.stats().DiskHits, 0u);

  // Truncation is rejected too.
  std::filesystem::resize_file(Path, 10);
  ScheduleCache Reader2(Config);
  EXPECT_FALSE(Reader2.lookup(Key, CG, G, MD, 0).Result.has_value());
  EXPECT_GE(Reader2.stats().VerifyRejects, 1u);
}

TEST(ScheduleCache, StaleVersionRejected) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram();
  DepGraph G = graphFor(*P, MD);
  CanonicalGraph CG = canonicalizeGraph(G);
  ModuloScheduleResult MS = moduloSchedule(G, MD);
  ASSERT_TRUE(MS.Success);
  Fingerprint Key{0x11, 0x22};

  ScheduleCacheConfig Config;
  Config.Dir = freshDir("cache_test_stale");
  { ScheduleCache(Config).insert(Key, CG, MS); }

  // Bump the version field (offset 4, little-endian u32) and fix up the
  // trailing checksum so only the version mismatches.
  std::string Path = Config.Dir + "/" + Key.hex() + ".sched";
  std::string Buf;
  {
    std::ifstream In(Path, std::ios::binary);
    Buf.assign(std::istreambuf_iterator<char>(In),
               std::istreambuf_iterator<char>());
  }
  ASSERT_GT(Buf.size(), 16u);
  Buf[4] = static_cast<char>(ScheduleCache::DiskFormatVersion + 1);
  uint64_t Sum = 1469598103934665603ULL; // FNV-1a over all but the tail
  for (size_t I = 0; I + 8 < Buf.size(); ++I) {
    Sum ^= static_cast<unsigned char>(Buf[I]);
    Sum *= 1099511628211ULL;
  }
  for (int I = 0; I != 8; ++I)
    Buf[Buf.size() - 8 + static_cast<size_t>(I)] =
        static_cast<char>((Sum >> (8 * I)) & 0xff);
  {
    std::ofstream OutF(Path, std::ios::binary | std::ios::trunc);
    OutF.write(Buf.data(), static_cast<std::streamsize>(Buf.size()));
  }
  ScheduleCache Reader(Config);
  EXPECT_FALSE(Reader.lookup(Key, CG, G, MD, 0).Result.has_value());
  EXPECT_GE(Reader.stats().VerifyRejects, 1u);
}

TEST(ScheduleCache, StatsJsonKeysSorted) {
  ScheduleCache Cache;
  std::string J = Cache.stats().toJson();
  const char *KeysInOrder[] = {"bytes",     "disk_hits", "disk_stores",
                               "entries",   "evictions", "hits",
                               "misses",    "verify_rejects"};
  size_t Last = 0;
  for (const char *K : KeysInOrder) {
    size_t At = J.find(std::string("\"") + K + "\"");
    ASSERT_NE(At, std::string::npos) << K;
    EXPECT_GT(At, Last) << K << " out of order in " << J;
    Last = At;
  }
}

//===----------------------------------------------------------------------===//
// Compiler integration
//===----------------------------------------------------------------------===//

TEST(CompilerCache, SecondCompileHitsAndMatches) {
  MachineDescription MD = MachineDescription::warpCell();
  CompilerOptions Opts;
  auto Ref = chainProgram();
  CompileResult R0 = compileProgram(*Ref, MD, Opts);
  ASSERT_TRUE(R0.Ok);

  ScheduleCache Cache;
  Opts.Cache = &Cache;
  auto P1 = chainProgram();
  CompileResult R1 = compileProgram(*P1, MD, Opts);
  ASSERT_TRUE(R1.Ok);
  EXPECT_EQ(R1.Report.SchedTotals.CacheMisses, 1u);
  EXPECT_EQ(R1.Report.SchedTotals.CacheHits, 0u);

  auto P2 = chainProgram();
  CompileResult R2 = compileProgram(*P2, MD, Opts);
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R2.Report.SchedTotals.CacheHits, 1u);
  EXPECT_EQ(R2.Report.SchedTotals.CacheMisses, 0u);

  std::string Expected = vliwProgramToString(R0.Code, MD);
  EXPECT_EQ(vliwProgramToString(R1.Code, MD), Expected);
  EXPECT_EQ(vliwProgramToString(R2.Code, MD), Expected);
}

TEST(CompilerCache, RenamedReorderedProgramHitsSameEntry) {
  // The metamorphic end-to-end: a renamed, declaration-reordered copy of
  // the loop reuses the cached search (DDG canonicalization at work) and
  // still compiles to ITS OWN correct code — the schedule is permuted
  // onto the requesting graph, the code generator uses the requesting
  // program's ids.
  MachineDescription MD = MachineDescription::warpCell();
  ScheduleCache Cache;
  CompilerOptions Opts;
  Opts.Cache = &Cache;
  auto P1 = chainProgram();
  CompileResult R1 = compileProgram(*P1, MD, Opts);
  ASSERT_TRUE(R1.Ok);
  auto P2 = chainProgram(/*SwapDecls=*/true, /*Renamed=*/true);
  CompileResult R2 = compileProgram(*P2, MD, Opts);
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R2.Report.SchedTotals.CacheHits, 1u);

  // Same code as an uncached compile of the same reordered program.
  auto P3 = chainProgram(/*SwapDecls=*/true, /*Renamed=*/true);
  CompileResult R3 = compileProgram(*P3, MD, CompilerOptions{});
  ASSERT_TRUE(R3.Ok);
  EXPECT_EQ(vliwProgramToString(R2.Code, MD),
            vliwProgramToString(R3.Code, MD));
}

TEST(CompilerCache, ChaosArmedCompileNeverPopulates) {
  MachineDescription MD = MachineDescription::warpCell();
  ScheduleCache Cache;
  CompilerOptions Opts;
  Opts.Cache = &Cache;
  // A seed that names a site with no dynamic occurrences here still marks
  // the compile as chaos-armed; its results must not be published.
  Opts.ChaosSeed = faults::chaosSeed(faults::Site::WorkerDeath, 50);
  auto P = chainProgram();
  CompileResult R = compileProgram(*P, MD, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(Cache.stats().Entries, 0u);
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

CompileJob kernelJob(const WorkloadSpec &Spec, const MachineDescription &MD,
                     const CompilerOptions &Opts) {
  CompileJob J;
  J.MD = &MD;
  J.Opts = Opts;
  J.Make = [&Spec] { return std::move(Spec.Make().Prog); };
  return J;
}

TEST(CompileService, MemoizesRepeatRequests) {
  MachineDescription MD = MachineDescription::warpCell();
  CompilerOptions Opts;
  CompileService Service;
  CompileJob J;
  J.MD = &MD;
  J.Opts = Opts;
  unsigned Built = 0;
  J.Make = [&Built] {
    ++Built;
    return chainProgram();
  };
  CompileResult R1 = Service.compileOne(J);
  CompileResult R2 = Service.compileOne(J);
  ASSERT_TRUE(R1.Ok);
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(Service.stats().Compiles, 1u);
  EXPECT_EQ(Service.stats().MemoHits, 1u);
  EXPECT_EQ(Built, 2u) << "without a key, each request fingerprints once";
  EXPECT_EQ(vliwProgramToString(R1.Code, MD),
            vliwProgramToString(R2.Code, MD));

  // With a precomputed key the memo hit skips the factory entirely.
  J.Key = CompileService::jobKey(*chainProgram(), MD, Opts);
  CompileResult R3 = Service.compileOne(J);
  ASSERT_TRUE(R3.Ok);
  EXPECT_EQ(Built, 2u);
  EXPECT_EQ(Service.stats().MemoHits, 2u);
  EXPECT_EQ(vliwProgramToString(R3.Code, MD),
            vliwProgramToString(R1.Code, MD));
}

TEST(CompileService, SingleFlightCoalescesConcurrentDuplicates) {
  MachineDescription MD = MachineDescription::warpCell();
  CompilerOptions Opts;
  ThreadPool Pool(8); // one worker per job: every request starts
  CompileService::Config SC;
  SC.Pool = &Pool;
  SC.MemoizeResults = false; // leave only single-flight dedup
  CompileService Service(SC);
  std::vector<CompileJob> Jobs;
  Fingerprint Key = CompileService::jobKey(*chainProgram(), MD, Opts);
  for (int I = 0; I != 8; ++I) {
    CompileJob J;
    J.MD = &MD;
    J.Opts = Opts;
    // The leader's factory holds the flight open until the other seven
    // requests have registered as waiters, so the coalescing outcome is
    // exact, not a race. Keyed jobs never call Make on the waiter path.
    J.Make = [&Service] {
      auto Deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      while (Service.stats().Coalesced < 7 &&
             std::chrono::steady_clock::now() < Deadline)
        std::this_thread::yield();
      return chainProgram();
    };
    J.Key = Key; // all 8 enter the flight map under one key
    Jobs.push_back(J);
  }
  std::vector<CompileResult> Results = Service.compileBatch(Jobs);
  ASSERT_EQ(Results.size(), 8u);
  std::string Expected = vliwProgramToString(Results[0].Code, MD);
  for (const CompileResult &R : Results) {
    ASSERT_TRUE(R.Ok);
    EXPECT_EQ(vliwProgramToString(R.Code, MD), Expected);
  }
  ServiceStats SS = Service.stats();
  EXPECT_EQ(SS.Requests, 8u);
  EXPECT_EQ(SS.Compiles, 1u);
  EXPECT_EQ(SS.Coalesced, 7u);
}

TEST(CompileService, BatchBitIdenticalToSerialUncached) {
  MachineDescription MD = MachineDescription::warpCell();
  CompilerOptions Opts;
  const std::vector<WorkloadSpec> &Kernels = livermoreKernels();
  ASSERT_FALSE(Kernels.empty());
  size_t N = std::min<size_t>(Kernels.size(), 6);

  std::vector<std::string> Ref(N);
  for (size_t I = 0; I != N; ++I) {
    BuiltWorkload W = Kernels[I].Make();
    CompileResult R = compileProgram(*W.Prog, MD, Opts);
    ASSERT_TRUE(R.Ok) << Kernels[I].Name;
    Ref[I] = vliwProgramToString(R.Code, MD);
  }

  ScheduleCache Cache;
  CompileService::Config SC;
  SC.Cache = &Cache;
  CompileService Service(SC);
  std::vector<CompileJob> Jobs;
  for (unsigned Dup = 0; Dup != 3; ++Dup)
    for (size_t I = 0; I != N; ++I)
      Jobs.push_back(kernelJob(Kernels[I], MD, Opts));
  std::vector<CompileResult> Results = Service.compileBatch(Jobs);
  ASSERT_EQ(Results.size(), 3 * N);
  for (size_t I = 0; I != Results.size(); ++I) {
    ASSERT_TRUE(Results[I].Ok);
    EXPECT_EQ(vliwProgramToString(Results[I].Code, MD), Ref[I % N])
        << Kernels[I % N].Name;
  }
  EXPECT_EQ(Service.stats().Compiles, N);
}

TEST(CompileService, BudgetedJobsBypassTheMemo) {
  MachineDescription MD = MachineDescription::warpCell();
  CompilerOptions Opts;
  Opts.Budget.MaxNodes = 1000000; // limited() => bypass
  CompileService Service;
  CompileJob J;
  J.MD = &MD;
  J.Opts = Opts;
  J.Make = [] { return chainProgram(); };
  Service.compileOne(J);
  Service.compileOne(J);
  EXPECT_EQ(Service.stats().Compiles, 2u);
  EXPECT_EQ(Service.stats().MemoHits, 0u);
}

TEST(CompileService, StatsJsonKeysSorted) {
  CompileService Service;
  std::string J = Service.stats().toJson();
  const char *KeysInOrder[] = {"coalesced", "compiles", "memo_hits",
                               "requests"};
  size_t Last = 0;
  for (const char *K : KeysInOrder) {
    size_t At = J.find(std::string("\"") + K + "\"");
    ASSERT_NE(At, std::string::npos) << K;
    EXPECT_GT(At, Last) << K;
    Last = At;
  }
}

} // namespace
