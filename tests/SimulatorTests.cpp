//===- SimulatorTests.cpp - VLIW simulator unit tests -------------------------===//
//
// Part of warp-swp.
//
// Exercises the simulator directly on hand-built VLIW programs: timing
// semantics (read-at-issue, visible-at-latency, store-at-end-of-cycle),
// predication, AGU loop variables, control flow, and the dynamic audits
// that turn scheduler bugs into hard failures.
//
//===----------------------------------------------------------------------===//

#include "swp/Sim/Simulator.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

/// A fixture with a tiny program context (one float array) and helpers to
/// hand-assemble instructions.
class SimFixture : public ::testing::Test {
protected:
  SimFixture() : MD(MachineDescription::warpCell()) {
    Arr = P.createArray("a", RegClass::Float, 16);
  }

  static PhysReg f(unsigned I) { return {RegClass::Float, I}; }
  static PhysReg r(unsigned I) { return {RegClass::Int, I}; }

  MachOp fconst(PhysReg Def, double V) {
    MachOp M;
    M.Opc = Opcode::FConst;
    M.Def = Def;
    M.FImm = V;
    return M;
  }
  MachOp iconst(PhysReg Def, int64_t V) {
    MachOp M;
    M.Opc = Opcode::IConst;
    M.Def = Def;
    M.IImm = V;
    return M;
  }
  MachOp fadd(PhysReg Def, PhysReg A, PhysReg B) {
    MachOp M;
    M.Opc = Opcode::FAdd;
    M.Def = Def;
    M.Uses = {A, B};
    return M;
  }
  MachOp fstore(int64_t Index, PhysReg Val) {
    MachOp M;
    M.Opc = Opcode::FStore;
    M.ArrayId = Arr;
    M.Index.Const = Index;
    M.Uses = {Val};
    return M;
  }
  MachOp fload(PhysReg Def, int64_t Index) {
    MachOp M;
    M.Opc = Opcode::FLoad;
    M.Def = Def;
    M.ArrayId = Arr;
    M.Index.Const = Index;
    return M;
  }

  void halt(VLIWProgram &Prog) {
    VLIWInst I;
    I.Ctrl.K = ControlOp::Kind::Halt;
    Prog.Insts.push_back(I);
  }

  SimResult run(const VLIWProgram &Prog, ProgramInput In = {}) {
    return simulate(Prog, P, MD, In);
  }

  Program P;
  unsigned Arr = 0;
  MachineDescription MD;
};

TEST_F(SimFixture, ResultVisibleExactlyAtLatency) {
  // fconst r0 (latency 1) at cycle 0; fadd at cycle 1 reads it; the add's
  // own result (latency 7) is stored at cycle 8 but NOT at cycle 7.
  VLIWProgram Prog;
  Prog.Insts.resize(10);
  Prog.Insts[0].Ops.push_back(fconst(f(0), 2.0));
  Prog.Insts[1].Ops.push_back(fadd(f(1), f(0), f(0)));
  Prog.Insts[7].Ops.push_back(fstore(0, f(1))); // Too early: sees 0.
  Prog.Insts[8].Ops.push_back(fstore(1, f(1))); // Exactly at 1+7: sees 4.
  halt(Prog);
  SimResult R = run(Prog);
  ASSERT_TRUE(R.State.Ok) << R.State.Error;
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][0], 0.0f);
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][1], 4.0f);
}

TEST_F(SimFixture, LoadSamplesBeforeSameCycleStore) {
  // A load and a store to the same element in one cycle: the load sees
  // the old value (the dependence model's "store commits at end of
  // cycle").
  VLIWProgram Prog;
  Prog.Insts.resize(12);
  Prog.Insts[0].Ops.push_back(fconst(f(0), 9.0));
  // Need two memory ops in one cycle: use the x2 cell.
  MD = MachineDescription::scaledWarpCell(2);
  Prog.Insts[1].Ops.push_back(fload(f(1), 3));   // Old value 5.
  Prog.Insts[1].Ops.push_back(fstore(3, f(0)));  // Writes 9 at end.
  Prog.Insts[5].Ops.push_back(fstore(4, f(1)));  // Load result: 5.
  halt(Prog);
  ProgramInput In;
  In.FloatArrays[Arr] = {0, 0, 0, 5.0f};
  SimResult R = run(Prog, In);
  ASSERT_TRUE(R.State.Ok) << R.State.Error;
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][3], 9.0f);
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][4], 5.0f);
}

TEST_F(SimFixture, PredicationSelectsVersion) {
  // Two complementary-predicated stores share one instruction (the union
  // emission of section 3.1): only the true-guard one takes effect.
  VLIWProgram Prog;
  Prog.Insts.resize(5);
  Prog.Insts[0].Ops.push_back(iconst(r(0), 1)); // Condition: true.
  Prog.Insts[1].Ops.push_back(fconst(f(0), 7.0));
  Prog.Insts[2].Ops.push_back(fconst(f(1), 8.0));
  MachOp Then = fstore(0, f(0));
  Then.Preds = {{r(0), false}};
  MachOp Else = fstore(0, f(1));
  Else.Preds = {{r(0), true}};
  Prog.Insts[4].Ops.push_back(Then);
  Prog.Insts[4].Ops.push_back(Else);
  halt(Prog);
  SimResult R = run(Prog);
  ASSERT_TRUE(R.State.Ok) << R.State.Error;
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][0], 7.0f);
  // Two active stores to one address would have been an error; the
  // complementary predicates made it legal.
}

TEST_F(SimFixture, InertOpsConsumeNoResources) {
  // Two same-resource ops with complementary predicates in one cycle:
  // legal, because only one is active.
  VLIWProgram Prog;
  Prog.Insts.resize(4);
  Prog.Insts[0].Ops.push_back(iconst(r(0), 0));
  Prog.Insts[1].Ops.push_back(fconst(f(0), 1.0));
  MachOp A = fadd(f(1), f(0), f(0));
  A.Preds = {{r(0), false}};
  MachOp B = fadd(f(2), f(0), f(0));
  B.Preds = {{r(0), true}};
  Prog.Insts[3].Ops.push_back(A);
  Prog.Insts[3].Ops.push_back(B);
  // Give the B-add time to land, then store its result.
  Prog.Insts.resize(11);
  Prog.Insts[10].Ops.push_back(fstore(0, f(2)));
  halt(Prog);
  SimResult R = run(Prog);
  ASSERT_TRUE(R.State.Ok) << R.State.Error;
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][0], 2.0f);
}

TEST_F(SimFixture, ResourceOverSubscriptionIsCaught) {
  // Two unpredicated adds in one cycle on the single adder: hard error.
  VLIWProgram Prog;
  Prog.Insts.resize(2);
  Prog.Insts[0].Ops.push_back(fconst(f(0), 1.0));
  Prog.Insts[1].Ops.push_back(fadd(f(1), f(0), f(0)));
  Prog.Insts[1].Ops.push_back(fadd(f(2), f(0), f(0)));
  halt(Prog);
  SimResult R = run(Prog);
  EXPECT_FALSE(R.State.Ok);
  EXPECT_NE(R.State.Error.find("over-subscription"), std::string::npos);
}

TEST_F(SimFixture, WriteWriteCollisionIsCaught) {
  // Two results landing on one register in the same cycle.
  VLIWProgram Prog;
  Prog.Insts.resize(2);
  Prog.Insts[0].Ops.push_back(fconst(f(0), 1.0));
  Prog.Insts[1].Ops.push_back(fconst(f(0), 2.0));
  // fconst latency 1: first lands at cycle 1... second at cycle 2: no
  // collision. Force one: two different-unit ops with latencies meeting.
  Prog.Insts.resize(10);
  MachOp Mul;
  Mul.Opc = Opcode::FMul;
  Mul.Def = f(5);
  Mul.Uses = {f(0), f(0)};
  Prog.Insts[2].Ops.push_back(Mul); // Lands at 9.
  Prog.Insts[8].Ops.push_back(fconst(f(5), 3.0)); // Also lands at 9.
  halt(Prog);
  SimResult R = run(Prog);
  EXPECT_FALSE(R.State.Ok);
  EXPECT_NE(R.State.Error.find("collision"), std::string::npos);
}

TEST_F(SimFixture, SameCycleStoresToOneAddressAreCaught) {
  MD = MachineDescription::scaledWarpCell(2); // Two memory ports.
  VLIWProgram Prog;
  Prog.Insts.resize(3);
  Prog.Insts[0].Ops.push_back(fconst(f(0), 1.0));
  Prog.Insts[1].Ops.push_back(fstore(2, f(0)));
  Prog.Insts[1].Ops.push_back(fstore(2, f(0)));
  halt(Prog);
  SimResult R = run(Prog);
  EXPECT_FALSE(R.State.Ok);
  EXPECT_NE(R.State.Error.find("two stores"), std::string::npos);
}

TEST_F(SimFixture, AguLoopVariableDrivesSubscripts) {
  // A two-iteration loop writing a[LV]: SetLoopVar, then a store whose
  // subscript is the loop variable, advance + DecJumpPos.
  VLIWProgram Prog;
  Prog.Insts.resize(3);
  Prog.Insts[0].Ops.push_back(fconst(f(0), 6.5));
  Prog.Insts[1].Ops.push_back(iconst(r(0), 3)); // Counter: 3 iterations.
  AguOp Init;
  Init.LoopId = 0;
  Init.Relative = false;
  Init.Imm = 4;
  Prog.Insts[1].Agu.push_back(Init);
  // Loop body at instruction 2.
  MachOp St;
  St.Opc = Opcode::FStore;
  St.ArrayId = Arr;
  St.Index.addTerm(0, 1); // a[LV0]
  St.Uses = {f(0)};
  Prog.Insts[2].Ops.push_back(St);
  Prog.Insts[2].Agu.push_back(AguOp{0, /*Relative=*/true, {}, 1});
  Prog.Insts[2].Ctrl.K = ControlOp::Kind::DecJumpPos;
  Prog.Insts[2].Ctrl.Counter = r(0);
  Prog.Insts[2].Ctrl.Target = 2;
  halt(Prog);
  // Program needs a loop id: create one so LoopVars is sized.
  P.createLoopId();
  SimResult R = run(Prog);
  ASSERT_TRUE(R.State.Ok) << R.State.Error;
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][4], 6.5f);
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][5], 6.5f);
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][6], 6.5f);
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][7], 0.0f);
}

TEST_F(SimFixture, JumpIfZeroAndJump) {
  VLIWProgram Prog;
  Prog.Insts.resize(6);
  Prog.Insts[0].Ops.push_back(iconst(r(0), 0));
  Prog.Insts[1].Ops.push_back(fconst(f(0), 1.0));
  Prog.Insts[1].Ctrl.K = ControlOp::Kind::JumpIfZero;
  Prog.Insts[1].Ctrl.Counter = r(0);
  Prog.Insts[1].Ctrl.Target = 4;
  Prog.Insts[2].Ops.push_back(fstore(0, f(0))); // Skipped.
  Prog.Insts[4].Ops.push_back(fstore(1, f(0))); // Reached.
  halt(Prog);
  SimResult R = run(Prog);
  ASSERT_TRUE(R.State.Ok) << R.State.Error;
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][0], 0.0f);
  EXPECT_FLOAT_EQ(R.State.FloatArrays[Arr][1], 1.0f);
}

TEST_F(SimFixture, FallingOffTheEndIsCaught) {
  VLIWProgram Prog;
  Prog.Insts.resize(2); // No halt.
  SimResult R = run(Prog);
  EXPECT_FALSE(R.State.Ok);
  EXPECT_NE(R.State.Error.find("fell off"), std::string::npos);
}

TEST_F(SimFixture, RunawayLoopHitsCycleLimit) {
  VLIWProgram Prog;
  Prog.Insts.resize(1);
  Prog.Insts[0].Ctrl.K = ControlOp::Kind::Jump;
  Prog.Insts[0].Ctrl.Target = 0;
  SimOptions Opts;
  Opts.MaxCycles = 1000;
  SimResult R = simulate(Prog, P, MD, {}, Opts);
  EXPECT_FALSE(R.State.Ok);
  EXPECT_NE(R.State.Error.find("cycle limit"), std::string::npos);
}

TEST_F(SimFixture, PendingWritesDrainAfterHalt) {
  // A multiply issued right before halt still lands in the final state.
  VLIWProgram Prog;
  Prog.Insts.resize(2);
  Prog.Insts[0].Ops.push_back(fconst(f(0), 3.0));
  MachOp Mul;
  Mul.Opc = Opcode::FMul;
  Mul.Def = f(1);
  Mul.Uses = {f(0), f(0)};
  Prog.Insts[1].Ops.push_back(Mul);
  halt(Prog); // Halt at cycle 2; the product lands at cycle 8.
  SimResult R = run(Prog);
  ASSERT_TRUE(R.State.Ok) << R.State.Error;
  EXPECT_EQ(R.Cycles, 3u);
  EXPECT_EQ(R.State.Flops, 1u);
}

} // namespace
