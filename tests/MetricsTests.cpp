//===- MetricsTests.cpp - metrics registry / exposition tests -------------------===//
//
// Part of warp-swp.
//
// The telemetry suite (ctest label "metrics"; also run under the tsan
// preset): registry semantics on private instances — idempotent
// registration, enable/disable, additive gauges, callback gauges, slot
// exhaustion — plus the histogram math against a brute-force reference,
// an N-thread exactness check for the sharded recording path, the
// MetricsSink JSONL stream, the Session telemetry hook, and golden
// snapshots locking both exposition formats (update with
// SWP_UPDATE_GOLDENS=1).
//
//===----------------------------------------------------------------------===//

#include "swp/API/Session.h"
#include "swp/IR/IRBuilder.h"
#include "swp/Metrics/Metrics.h"
#include "swp/Metrics/MetricsSink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#ifndef SWP_GOLDEN_DIR
#error "SWP_GOLDEN_DIR must point at tests/goldens"
#endif

using namespace swp;
using namespace swp::metrics;

namespace {

/// A fresh enabled registry for deterministic counting.
struct EnabledRegistry {
  MetricsRegistry Reg;
  EnabledRegistry() { Reg.setEnabled(true); }
};

TEST(Metrics, CounterBasicsAndIdempotentRegistration) {
  EnabledRegistry E;
  Counter A = E.Reg.counter("swp_test_total", "", "help");
  A.inc();
  A.inc(4);
  // Same (name, labels) resolves to the same cells.
  Counter B = E.Reg.counter("swp_test_total");
  B.inc(5);
  MetricsSnapshot S = E.Reg.snapshot();
  const SnapshotCounter *C = S.counter("swp_test_total");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Value, 10u);
  EXPECT_EQ(C->Help, "help");
  // Distinct labels are distinct series; counterTotal sums them.
  E.Reg.counter("swp_test_total", "k=\"v\"").inc(7);
  EXPECT_EQ(E.Reg.snapshot().counterTotal("swp_test_total"), 17u);
}

TEST(Metrics, DisabledRecordsAreDropped) {
  MetricsRegistry Reg; // Disabled by default.
  EXPECT_FALSE(Reg.enabled());
  Counter C = Reg.counter("swp_test_total");
  Histogram H = Reg.histogram("swp_test_us");
  C.inc(3);
  H.record(100);
  MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.counter("swp_test_total")->Value, 0u);
  EXPECT_EQ(S.histogram("swp_test_us")->Count, 0u);
  Reg.setEnabled(true);
  C.inc(3);
  H.record(100);
  S = Reg.snapshot();
  EXPECT_EQ(S.counter("swp_test_total")->Value, 3u);
  EXPECT_EQ(S.histogram("swp_test_us")->Count, 1u);
  // Default-constructed handles are inert everywhere.
  Counter{}.inc();
  Gauge{}.add(1);
  Histogram{}.record(1);
}

TEST(Metrics, GaugeTracksSignedLevel) {
  EnabledRegistry E;
  Gauge G = E.Reg.gauge("swp_test_depth");
  G.add(10);
  G.sub(3);
  EXPECT_DOUBLE_EQ(E.Reg.snapshot().gauge("swp_test_depth")->Value, 7.0);
  G.sub(9); // Levels may legitimately read negative transiently.
  EXPECT_DOUBLE_EQ(E.Reg.snapshot().gauge("swp_test_depth")->Value, -2.0);
}

TEST(Metrics, CallbackGauge) {
  EnabledRegistry E;
  double Level = 41.5;
  ASSERT_TRUE(E.Reg.registerGauge("swp_test_sampled", "", "sampled",
                                  [&Level] { return Level; }));
  Level = 42.5;
  EXPECT_DOUBLE_EQ(E.Reg.snapshot().gauge("swp_test_sampled")->Value, 42.5);
  // Same (name, labels) again is a conflict.
  EXPECT_FALSE(
      E.Reg.registerGauge("swp_test_sampled", "", "", [] { return 0.0; }));
}

TEST(Metrics, BucketMath) {
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex(uint64_t{1} << 30), 31u);
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), 31u);
  EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::bucketUpperBound(30), (uint64_t{1} << 30) - 1);
  EXPECT_EQ(Histogram::bucketUpperBound(31), UINT64_MAX);
  // Every value lands in the bucket whose range covers it.
  for (uint64_t V : {0ull, 1ull, 2ull, 7ull, 8ull, 1023ull, 1024ull,
                     (1ull << 30) - 1, 1ull << 30, 1ull << 40}) {
    unsigned I = Histogram::bucketIndex(V);
    EXPECT_LE(V, Histogram::bucketUpperBound(I)) << V;
    if (I > 0)
      EXPECT_GT(V, Histogram::bucketUpperBound(I - 1)) << V;
  }
}

TEST(Metrics, PercentileMatchesBruteForce) {
  EnabledRegistry E;
  Histogram H = E.Reg.histogram("swp_test_us");
  // Deterministic samples spanning many magnitudes, including zeros and
  // overflow-bucket values.
  std::mt19937_64 Rng(12345);
  std::vector<uint64_t> Samples;
  for (int I = 0; I != 5000; ++I) {
    unsigned Mag = static_cast<unsigned>(Rng() % 34); // 0..33 bits
    uint64_t V = Mag == 0 ? 0 : (Rng() & ((uint64_t{1} << Mag) - 1));
    Samples.push_back(V);
    H.record(V);
  }
  MetricsSnapshot Snap = E.Reg.snapshot();
  const SnapshotHistogram *S = Snap.histogram("swp_test_us");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Count, Samples.size());

  std::vector<uint64_t> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  for (double P : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    // Reference: the true rank-ceil(P*N) sample, quantized to its bucket's
    // upper bound — exactly what the histogram stores about it.
    size_t Rank = static_cast<size_t>(std::ceil(P * Sorted.size()));
    Rank = std::min(std::max<size_t>(Rank, 1), Sorted.size());
    uint64_t Expect = Histogram::bucketUpperBound(
        Histogram::bucketIndex(Sorted[Rank - 1]));
    EXPECT_EQ(S->percentile(P), Expect) << "P=" << P;
  }
  // Empty histograms report 0 for every percentile.
  EXPECT_EQ(E.Reg.snapshot().histogram("swp_test_us2"), nullptr);
  (void)E.Reg.histogram("swp_test_us2");
  EXPECT_EQ(E.Reg.snapshot().histogram("swp_test_us2")->percentile(0.5), 0u);
}

// The sharded recording path must lose nothing under contention: N
// threads hammer one histogram and one counter; the merged totals are
// exact. This is the test the tsan preset re-runs for data races.
TEST(Metrics, ConcurrentRecordingIsExact) {
  EnabledRegistry E;
  Histogram H = E.Reg.histogram("swp_test_us");
  Counter C = E.Reg.counter("swp_test_total");
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&, T] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        H.record((T * PerThread + I) % 1000);
        C.inc();
      }
    });
  for (std::thread &T : Ts)
    T.join();

  MetricsSnapshot S = E.Reg.snapshot();
  EXPECT_EQ(S.counter("swp_test_total")->Value, Threads * PerThread);
  const SnapshotHistogram *HS = S.histogram("swp_test_us");
  ASSERT_NE(HS, nullptr);
  EXPECT_EQ(HS->Count, Threads * PerThread);
  // Expected sum and per-bucket counts, computed serially.
  uint64_t Sum = 0;
  std::array<uint64_t, Histogram::NumBuckets> Buckets{};
  for (unsigned T = 0; T != Threads; ++T)
    for (uint64_t I = 0; I != PerThread; ++I) {
      uint64_t V = (T * PerThread + I) % 1000;
      Sum += V;
      ++Buckets[Histogram::bucketIndex(V)];
    }
  EXPECT_EQ(HS->Sum, Sum);
  for (unsigned B = 0; B != Histogram::NumBuckets; ++B)
    EXPECT_EQ(HS->Buckets[B], Buckets[B]) << "bucket " << B;
}

TEST(Metrics, SlotExhaustionYieldsInertHandles) {
  EnabledRegistry E;
  // Histograms burn 33 slots each; 4096/33 = 124 fit.
  std::vector<Histogram> Hs;
  for (int I = 0; I != 130; ++I)
    Hs.push_back(E.Reg.histogram("swp_test_us", "i=\"" + std::to_string(I) +
                                                    "\""));
  EXPECT_GT(E.Reg.droppedRegistrations(), 0u);
  for (Histogram &H : Hs)
    H.record(1); // Inert tail handles must be safe to record into.
  // A kind conflict is also refused: same key, different type.
  uint64_t Before = E.Reg.droppedRegistrations();
  E.Reg.counter("swp_test_us", "i=\"0\"").inc();
  EXPECT_GT(E.Reg.droppedRegistrations(), Before);
  // The registry still answers snapshots.
  EXPECT_GT(E.Reg.snapshot().Histograms.size(), 0u);
}

TEST(Metrics, ResetZeroesValuesKeepsRegistrations) {
  EnabledRegistry E;
  Counter C = E.Reg.counter("swp_test_total");
  C.inc(9);
  E.Reg.reset();
  EXPECT_EQ(E.Reg.snapshot().counter("swp_test_total")->Value, 0u);
  C.inc(2); // Handle survives reset.
  EXPECT_EQ(E.Reg.snapshot().counter("swp_test_total")->Value, 2u);
}

TEST(Metrics, SinkWritesJsonl) {
  EnabledRegistry E;
  Counter C = E.Reg.counter("swp_test_total");
  std::string Path = ::testing::TempDir() + "metrics-sink-test.jsonl";
  std::remove(Path.c_str());
  {
    MetricsSink::Config SC;
    SC.Path = Path;
    SC.IntervalMs = 0; // flushNow-only; dtor adds the final line.
    SC.Registry = &E.Reg;
    MetricsSink Sink(SC);
    ASSERT_TRUE(Sink.ok()) << Sink.error();
    C.inc();
    Sink.flushNow();
    C.inc();
    Sink.flushNow();
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::vector<std::string> Lines;
  for (std::string L; std::getline(In, L);)
    Lines.push_back(L);
  ASSERT_EQ(Lines.size(), 3u); // 2 explicit flushes + final on stop.
  for (size_t I = 0; I != Lines.size(); ++I) {
    EXPECT_NE(Lines[I].find("\"seq\":" + std::to_string(I + 1)),
              std::string::npos);
    EXPECT_NE(Lines[I].find("\"uptime_ms\":"), std::string::npos);
    EXPECT_NE(Lines[I].find("\"metrics\":{"), std::string::npos);
  }
  EXPECT_NE(Lines[0].find("\"swp_test_total\":1"), std::string::npos);
  EXPECT_NE(Lines[2].find("\"swp_test_total\":2"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Metrics, SinkReportsUnwritablePath) {
  MetricsSink::Config SC;
  SC.Path = "/nonexistent-dir-swp/metrics.jsonl";
  SC.IntervalMs = 0;
  MetricsSink Sink(SC);
  EXPECT_FALSE(Sink.ok());
  EXPECT_FALSE(Sink.error().empty());
}

/// A two-statement single-loop program for the Session hook test.
std::unique_ptr<Program> tinyProgram() {
  auto P = std::make_unique<Program>();
  IRBuilder B(*P);
  unsigned A = P->createArray("a", RegClass::Float, 64);
  VReg K = P->createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), K));
  B.endFor();
  return P;
}

TEST(Metrics, SessionMetricsJsonlHook) {
  const bool WasEnabled = metrics::enabled();
  std::string Path = ::testing::TempDir() + "session-metrics-test.jsonl";
  std::remove(Path.c_str());
  {
    SessionConfig SC;
    SC.MetricsJsonl = Path;
    SC.MetricsFlushMs = 0; // Final snapshot only.
    Session Sess(SC);
    ASSERT_EQ(Sess.configError(), "");
    EXPECT_TRUE(metrics::enabled()); // The hook switches recording on.
    auto P = tinyProgram();
    CompileResponse R = Sess.compileNow(*P);
    EXPECT_TRUE(R.Ok) << R.Result.Error;
  }
  metrics::setEnabled(WasEnabled);
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_NE(Line.find("swp_session_requests_total"), std::string::npos);
  std::remove(Path.c_str());

  // An unopenable sink path surfaces as the session's config error.
  SessionConfig Bad;
  Bad.MetricsJsonl = "/nonexistent-dir-swp/metrics.jsonl";
  Session BadSess(Bad);
  EXPECT_NE(BadSess.configError(), "");
  metrics::setEnabled(WasEnabled);
}

//===----------------------------------------------------------------------===//
// Label plumbing: labelBody / escapeLabelValue / LabeledFamily.
//===----------------------------------------------------------------------===//

TEST(Metrics, LabelBodySortsKeysAndEscapesValues) {
  // Keys are emitted in sorted order regardless of argument order, so a
  // label set has exactly one rendering — the property the per-target
  // goldens depend on.
  EXPECT_EQ(labelBody({{"target", "warp-cell"}, {"outcome", "ok"}}),
            "outcome=\"ok\",target=\"warp-cell\"");
  EXPECT_EQ(labelBody({{"outcome", "ok"}, {"target", "warp-cell"}}),
            "outcome=\"ok\",target=\"warp-cell\"");
  EXPECT_EQ(labelBody({{"target", "toy-cell"}}), "target=\"toy-cell\"");
  EXPECT_EQ(labelBody({}), "");
  // Backslash, quote, and newline are escaped per the Prometheus text
  // format; everything else passes through.
  EXPECT_EQ(escapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(labelBody({{"target", "x\"y"}}), "target=\"x\\\"y\"");
}

TEST(Metrics, LabeledFamilyIsIdempotentPerNameAndLabels) {
  EnabledRegistry E;
  CounterFamily F(E.Reg, "swp_test_by_target_total", "help", "target",
                  {{"outcome", "ok"}});
  // Repeated with() for one value resolves to the same cells.
  F.with("warp-cell").inc(2);
  F.with("warp-cell").inc(3);
  F.with("toy-cell").inc(1);
  MetricsSnapshot S = E.Reg.snapshot();
  const SnapshotCounter *WC = S.counter("swp_test_by_target_total",
                                        "outcome=\"ok\",target=\"warp-cell\"");
  ASSERT_NE(WC, nullptr) << "fixed+dynamic labels must render sorted";
  EXPECT_EQ(WC->Value, 5u);
  const SnapshotCounter *TC = S.counter("swp_test_by_target_total",
                                        "outcome=\"ok\",target=\"toy-cell\"");
  ASSERT_NE(TC, nullptr);
  EXPECT_EQ(TC->Value, 1u);
  EXPECT_EQ(S.counterTotal("swp_test_by_target_total"), 6u);

  // A second family over the same (name, labels) shares the series —
  // registration is idempotent at the registry, not per family object.
  CounterFamily F2(E.Reg, "swp_test_by_target_total", "help", "target",
                   {{"outcome", "ok"}});
  F2.with("warp-cell").inc(10);
  EXPECT_EQ(E.Reg.snapshot()
                .counter("swp_test_by_target_total",
                         "outcome=\"ok\",target=\"warp-cell\"")
                ->Value,
            15u);

  // Gauge and histogram families ride the same machinery.
  GaugeFamily GF(E.Reg, "swp_test_depth", "", "target");
  GF.with("warp-cell").add(4);
  GF.with("warp-cell").sub(1);
  EXPECT_DOUBLE_EQ(
      E.Reg.snapshot().gauge("swp_test_depth", "target=\"warp-cell\"")->Value,
      3.0);
  HistogramFamily HF(E.Reg, "swp_test_us", "", "target");
  HF.with("warp-cell").record(7);
  HF.with("warp-cell").record(9);
  EXPECT_EQ(
      E.Reg.snapshot().histogram("swp_test_us", "target=\"warp-cell\"")->Count,
      2u);
}

//===----------------------------------------------------------------------===//
// Exposition goldens.
//===----------------------------------------------------------------------===//

bool updateRequested() {
  const char *E = std::getenv("SWP_UPDATE_GOLDENS");
  return E && *E && std::string(E) != "0";
}

void checkGolden(const std::string &FileName, const std::string &Text) {
  std::string Path = std::string(SWP_GOLDEN_DIR) + "/" + FileName;
  if (updateRequested()) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Text;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden " << Path
                         << " (run with SWP_UPDATE_GOLDENS=1 to create it)";
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Text)
      << FileName
      << ": exposition drifted from its golden. If the change is "
         "intentional, rerun with SWP_UPDATE_GOLDENS=1 and review the diff.";
}

/// A registry with one of everything, fully deterministic values.
void populateGoldenRegistry(MetricsRegistry &Reg) {
  Reg.setEnabled(true);
  Reg.counter("swp_demo_requests_total", "", "Requests served").inc(42);
  Reg.counter("swp_demo_requests_total", "priority=\"high\"",
              "Requests served")
      .inc(7);
  Reg.gauge("swp_demo_queue_depth", "", "Queued requests").add(3);
  Reg.registerGauge("swp_demo_temperature", "", "Sampled level",
                    [] { return 21.5; });
  Histogram H =
      Reg.histogram("swp_demo_latency_us", "", "Request latency");
  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 100ull, 5000ull, 5000ull,
                     1ull << 31})
    H.record(V);
  // Per-target fan-out, exactly as the fleet dashboards see it: one
  // family, sorted label bodies, one series per target value.
  CounterFamily Hits(Reg, "swp_demo_cache_hits_total", "Cache hits",
                     "target");
  Hits.with("warp-cell").inc(12);
  Hits.with("warp-cell-x2").inc(4);
  HistogramFamily Gap(Reg, "swp_demo_ii_gap", "Achieved II minus MII",
                      "target");
  Gap.with("warp-cell").record(0);
  Gap.with("warp-cell").record(1);
  Gap.with("warp-cell-x2").record(2);
}

TEST(Metrics, PrometheusGolden) {
  MetricsRegistry Reg;
  populateGoldenRegistry(Reg);
  checkGolden("metrics-snapshot.prom", Reg.snapshot().toPrometheusText());
}

TEST(Metrics, JsonGolden) {
  MetricsRegistry Reg;
  populateGoldenRegistry(Reg);
  std::string Json = Reg.snapshot().toJson();
  EXPECT_EQ(Json.find('\n'), std::string::npos); // Single line.
  checkGolden("metrics-snapshot.json", Json);
}

} // namespace
