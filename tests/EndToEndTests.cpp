//===- EndToEndTests.cpp - compile -> simulate vs. interpret ------------------===//
//
// Part of warp-swp.
//
// The correctness oracle of the whole system: every program is compiled
// (pipelined and baseline, several policies), executed on the cycle-level
// simulator, and the final state must match the scalar interpreter
// bit-for-bit — for every trip count, including the short-loop dual-version
// paths.
//
//===----------------------------------------------------------------------===//

#include "swp/Codegen/Compiler.h"
#include "swp/Driver/W2CDriver.h"
#include "swp/Interp/Interpreter.h"
#include "swp/Metrics/Metrics.h"
#include "swp/Sim/Simulator.h"

#include "swp/IR/IRBuilder.h"
#include "swp/IR/Printer.h"
#include "swp/IR/Verifier.h"
#include "swp/Support/FaultInject.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <vector>

using namespace swp;

namespace {

struct Scenario {
  std::string Name;
  /// Builds the program; returns the input. Receives the trip count.
  std::function<ProgramInput(Program &, int64_t)> Build;
};

struct Config {
  std::string Name;
  MachineDescription MD;
  CompilerOptions Opts;
};

std::vector<Config> allConfigs() {
  std::vector<Config> Cs;
  {
    Config C{"warp-pipelined", MachineDescription::warpCell(), {}};
    Cs.push_back(C);
  }
  {
    Config C{"warp-baseline", MachineDescription::warpCell(), {}};
    C.Opts.EnablePipelining = false;
    Cs.push_back(C);
  }
  {
    Config C{"warp-nomve", MachineDescription::warpCell(), {}};
    C.Opts.MVE = MVEPolicy::Disabled;
    Cs.push_back(C);
  }
  {
    Config C{"warp-lcm", MachineDescription::warpCell(), {}};
    C.Opts.MVE = MVEPolicy::MinRegisters;
    Cs.push_back(C);
  }
  {
    Config C{"warp-2stage", MachineDescription::warpCell(), {}};
    C.Opts.Sched.MaxStages = 2;
    Cs.push_back(C);
  }
  {
    Config C{"warp-binsearch", MachineDescription::warpCell(), {}};
    C.Opts.Sched.BinarySearch = true;
    Cs.push_back(C);
  }
  {
    Config C{"toy-pipelined", MachineDescription::toyCell(), {}};
    Cs.push_back(C);
  }
  return Cs;
}

/// Compiles and runs one (scenario, config, trip count) and compares
/// against the interpreter.
void checkEquivalence(const Scenario &Sc, const Config &Cf, int64_t N) {
  Program P;
  ProgramInput Input = Sc.Build(P, N);
  DiagnosticEngine DE;
  ASSERT_TRUE(verifyProgram(P, DE)) << DE.str();

  CompileResult CR = compileProgram(P, Cf.MD, Cf.Opts);
  ASSERT_TRUE(CR.Ok) << Sc.Name << "/" << Cf.Name << " n=" << N << ": "
                     << CR.Error;

  // Interpret the post-compilation program (library calls expanded, the
  // induction increment added) so semantics line up exactly.
  ProgramState Golden = interpret(P, Input);
  ASSERT_TRUE(Golden.Ok) << Golden.Error;

  SimResult Sim = simulate(CR.Code, P, Cf.MD, Input);
  ASSERT_TRUE(Sim.State.Ok)
      << Sc.Name << "/" << Cf.Name << " n=" << N << ": " << Sim.State.Error;

  std::string Mismatch = compareStates(P, Golden, Sim.State);
  EXPECT_EQ(Mismatch, "") << Sc.Name << "/" << Cf.Name << " n=" << N;
  EXPECT_EQ(Golden.Flops, Sim.State.Flops)
      << "the pipelined code must execute exactly the sequential flops";
}

//===----------------------------------------------------------------------===//
// Scenarios.
//===----------------------------------------------------------------------===//

std::vector<Scenario> allScenarios() {
  std::vector<Scenario> S;

  S.push_back({"vector-add", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 128);
                 VReg K = B.fconst(2.5);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), K));
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[A].push_back(0.5f * I);
                 return In;
               }});

  S.push_back({"vector-add-runtime-n", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 128);
                 VReg Hi = P.createVReg(RegClass::Int, "hi", true);
                 VReg K = B.fconst(1.25);
                 ForStmt *L = B.beginForReg(0, Hi);
                 B.fstore(A, B.ix(L), B.fmul(B.fload(A, B.ix(L)), K));
                 B.endFor();
                 ProgramInput In;
                 In.IntScalars[Hi.Id] = N - 1;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[A].push_back(1.0f + I);
                 return In;
               }});

  S.push_back({"dot-product", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned X = P.createArray("x", RegClass::Float, 128);
                 unsigned Y = P.createArray("y", RegClass::Float, 128);
                 unsigned Out = P.createArray("out", RegClass::Float, 1);
                 VReg Acc = P.createVReg(RegClass::Float, "acc");
                 B.assignUn(Acc, Opcode::FMov, B.fconst(0.0));
                 ForStmt *L = B.beginForImm(0, N - 1);
                 VReg Prod = B.fmul(B.fload(X, B.ix(L)), B.fload(Y, B.ix(L)));
                 B.assign(Acc, Opcode::FAdd, Acc, Prod);
                 B.endFor();
                 B.fstore(Out, B.cx(0), Acc);
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I) {
                   In.FloatArrays[X].push_back(0.25f * I);
                   In.FloatArrays[Y].push_back(2.0f - 0.125f * I);
                 }
                 return In;
               }});

  S.push_back({"first-order-recurrence", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 130);
                 VReg Cb = B.fconst(0.5);
                 VReg Cc = B.fconst(1.0);
                 ForStmt *L = B.beginForImm(1, N);
                 VReg Prev = B.fload(A, B.ix(L, 1, -1));
                 B.fstore(A, B.ix(L), B.fadd(B.fmul(Prev, Cb), Cc));
                 B.endFor();
                 ProgramInput In;
                 In.FloatArrays[A] = {3.0f};
                 return In;
               }});

  S.push_back({"stencil", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 130);
                 unsigned Bb = P.createArray("b", RegClass::Float, 130);
                 ForStmt *L = B.beginForImm(1, N);
                 VReg Sum = B.fadd(B.fadd(B.fload(A, B.ix(L, 1, -1)),
                                          B.fload(A, B.ix(L))),
                                   B.fload(A, B.ix(L, 1, 1)));
                 B.fstore(Bb, B.ix(L), Sum);
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 130; ++I)
                   In.FloatArrays[A].push_back(0.1f * I * I - 3.0f);
                 return In;
               }});

  S.push_back({"conditional-abs", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned X = P.createArray("x", RegClass::Float, 128);
                 unsigned Y = P.createArray("y", RegClass::Float, 128);
                 VReg Zero = B.fconst(0.0);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 VReg V = B.fload(X, B.ix(L));
                 VReg Neg = B.binop(Opcode::FCmpLT, V, Zero);
                 VReg R = P.createVReg(RegClass::Float);
                 B.beginIf(Neg);
                 B.assignUn(R, Opcode::FNeg, V);
                 B.beginElse();
                 B.assignUn(R, Opcode::FMov, V);
                 B.endIf();
                 B.fstore(Y, B.ix(L), R);
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[X].push_back((I % 3 == 0 ? -1.0f : 1.0f) *
                                               (0.5f + I));
                 return In;
               }});

  S.push_back({"conditional-accumulate", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned X = P.createArray("x", RegClass::Float, 128);
                 unsigned Out = P.createArray("out", RegClass::Float, 2);
                 VReg Zero = B.fconst(0.0);
                 VReg PosSum = P.createVReg(RegClass::Float, "possum");
                 VReg NegSum = P.createVReg(RegClass::Float, "negsum");
                 B.assignMov(PosSum, Zero);
                 B.assignMov(NegSum, Zero);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 VReg V = B.fload(X, B.ix(L));
                 VReg Neg = B.binop(Opcode::FCmpLT, V, Zero);
                 B.beginIf(Neg);
                 B.assign(NegSum, Opcode::FAdd, NegSum, V);
                 B.beginElse();
                 B.assign(PosSum, Opcode::FAdd, PosSum, V);
                 B.endIf();
                 B.endFor();
                 B.fstore(Out, B.cx(0), PosSum);
                 B.fstore(Out, B.cx(1), NegSum);
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[X].push_back((I % 2 ? -1.0f : 1.0f) *
                                               0.25f * I);
                 return In;
               }});

  S.push_back({"matmul-nested", [](Program &P, int64_t N) {
                 // N x N matrix product with inner dot-product loops.
                 IRBuilder B(P);
                 int64_t Dim = std::max<int64_t>(1, std::min<int64_t>(N, 6));
                 unsigned A = P.createArray("a", RegClass::Float, Dim * Dim);
                 unsigned Bm = P.createArray("b", RegClass::Float, Dim * Dim);
                 unsigned C = P.createArray("c", RegClass::Float, Dim * Dim);
                 ForStmt *I = B.beginForImm(0, Dim - 1);
                 ForStmt *J = B.beginForImm(0, Dim - 1);
                 VReg Acc = P.createVReg(RegClass::Float, "acc");
                 B.assignUn(Acc, Opcode::FMov, B.fconst(0.0));
                 ForStmt *K = B.beginForImm(0, Dim - 1);
                 VReg Av = B.fload(A, B.ix(I, Dim) + B.ix(K));
                 VReg Bv = B.fload(Bm, B.ix(K, Dim) + B.ix(J));
                 B.assign(Acc, Opcode::FAdd, Acc, B.fmul(Av, Bv));
                 B.endFor();
                 B.fstore(C, B.ix(I, Dim) + B.ix(J), Acc);
                 B.endFor();
                 B.endFor();
                 ProgramInput In;
                 for (int64_t V = 0; V != Dim * Dim; ++V) {
                   In.FloatArrays[A].push_back(0.5f + 0.25f * V);
                   In.FloatArrays[Bm].push_back(1.5f - 0.125f * V);
                 }
                 return In;
               }});

  S.push_back({"queue-roundtrip", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 (void)L;
                 VReg V = B.recv(0);
                 B.send(0, B.fmul(V, V));
                 B.endFor();
                 ProgramInput In;
                 for (int64_t I = 0; I != N; ++I)
                   In.InputQueue.push_back(0.5f * I - 3.0f);
                 return In;
               }});

  S.push_back({"indvar-as-value", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 128);
                 VReg Two = B.fconst(2.0);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.fstore(A, B.ix(L), B.fmul(B.i2f(L->IndVar), Two));
                 B.endFor();
                 return ProgramInput{};
               }});

  S.push_back({"histogram-dynamic-subscript", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned Idx = P.createArray("idx", RegClass::Int, 128);
                 unsigned Hist = P.createArray("hist", RegClass::Float, 8);
                 VReg One = B.fconst(1.0);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 VReg Bin = B.iload(Idx, B.ix(L));
                 AffineExpr HIx;
                 HIx.Addend = Bin;
                 B.fstore(Hist, HIx, B.fadd(B.fload(Hist, HIx), One));
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.IntArrays[Idx].push_back((I * 5) % 8);
                 return In;
               }});

  S.push_back({"division-newton", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned X = P.createArray("x", RegClass::Float, 128);
                 unsigned Y = P.createArray("y", RegClass::Float, 128);
                 unsigned Q = P.createArray("q", RegClass::Float, 128);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.fstore(Q, B.ix(L),
                          B.fdiv(B.fload(X, B.ix(L)), B.fload(Y, B.ix(L))));
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I) {
                   In.FloatArrays[X].push_back(1.0f + 0.5f * I);
                   In.FloatArrays[Y].push_back(0.25f + 0.125f * I);
                 }
                 return In;
               }});

  S.push_back({"sqrt-loop", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned X = P.createArray("x", RegClass::Float, 128);
                 unsigned Y = P.createArray("y", RegClass::Float, 128);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.fstore(Y, B.ix(L), B.fsqrt(B.fload(X, B.ix(L))));
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[X].push_back(0.5f + 2.0f * I);
                 return In;
               }});

  S.push_back({"exp-loop", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned X = P.createArray("x", RegClass::Float, 128);
                 unsigned Y = P.createArray("y", RegClass::Float, 128);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.fstore(Y, B.ix(L), B.fexp(B.fload(X, B.ix(L))));
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[X].push_back(-4.0f + 0.0625f * I);
                 return In;
               }});

  S.push_back({"scalar-prelude-and-tail", [](Program &P, int64_t N) {
                 // Straight-line code around the loop exercises region
                 // stitching and global registers.
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 128);
                 unsigned Out = P.createArray("out", RegClass::Float, 1);
                 VReg Scale = B.fmul(B.fconst(3.0), B.fconst(0.5));
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.fstore(A, B.ix(L), B.fmul(B.fload(A, B.ix(L)), Scale));
                 B.endFor();
                 B.fstore(Out, B.cx(0), B.fadd(Scale, Scale));
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[A].push_back(1.0f + I);
                 return In;
               }});

  return S;
}

class EndToEnd
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, int64_t>> {
};

TEST_P(EndToEnd, SimMatchesInterp) {
  auto [ScIdx, CfIdx, N] = GetParam();
  static const std::vector<Scenario> Scenarios = allScenarios();
  static const std::vector<Config> Configs = allConfigs();
  checkEquivalence(Scenarios[ScIdx], Configs[CfIdx], N);
}

static std::string
endToEndName(const ::testing::TestParamInfo<std::tuple<size_t, size_t, int64_t>>
                 &Info) {
  static const std::vector<Scenario> Scenarios = allScenarios();
  static const std::vector<Config> Configs = allConfigs();
  auto [ScIdx, CfIdx, N] = Info.param;
  std::string Name = Scenarios[ScIdx].Name + "_" + Configs[CfIdx].Name +
                     "_n" + std::to_string(N);
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

static std::vector<std::tuple<size_t, size_t, int64_t>> allCases() {
  std::vector<std::tuple<size_t, size_t, int64_t>> Cases;
  size_t NumSc = allScenarios().size();
  size_t NumCf = allConfigs().size();
  // Trip counts straddle every dual-version boundary: empty, shorter than
  // the pipeline fill, around the unroll remainder, and long.
  const int64_t Trips[] = {1, 2, 3, 5, 8, 13, 27, 64};
  for (size_t Sc = 0; Sc != NumSc; ++Sc)
    for (size_t Cf = 0; Cf != NumCf; ++Cf)
      for (int64_t N : Trips)
        Cases.emplace_back(Sc, Cf, N);
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EndToEnd, ::testing::ValuesIn(allCases()),
                         endToEndName);

TEST(EndToEnd, PipeliningActuallySpeedsUp) {
  // The point of the whole exercise: same program, fewer cycles.
  auto Build = [](Program &P) {
    IRBuilder B(P);
    unsigned A = P.createArray("a", RegClass::Float, 600);
    VReg K = B.fconst(2.0);
    ForStmt *L = B.beginForImm(0, 499);
    B.fstore(A, B.ix(L), B.fmul(B.fadd(B.fload(A, B.ix(L)), K), K));
    B.endFor();
  };
  MachineDescription MD = MachineDescription::warpCell();

  Program P1;
  Build(P1);
  CompilerOptions Fast;
  CompileResult R1 = compileProgram(P1, MD, Fast);
  ASSERT_TRUE(R1.Ok) << R1.Error;
  SimResult S1 = simulate(R1.Code, P1, MD, {});
  ASSERT_TRUE(S1.State.Ok) << S1.State.Error;

  Program P2;
  Build(P2);
  CompilerOptions Slow;
  Slow.EnablePipelining = false;
  CompileResult R2 = compileProgram(P2, MD, Slow);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  SimResult S2 = simulate(R2.Code, P2, MD, {});
  ASSERT_TRUE(S2.State.Ok) << S2.State.Error;

  EXPECT_LT(S1.Cycles * 2, S2.Cycles)
      << "pipelined code should be at least 2x faster on this kernel";
  ASSERT_EQ(R1.Report.Loops.size(), 1u);
  EXPECT_TRUE(R1.Report.Loops[0].pipelined());
  EXPECT_EQ(R1.Report.Loops[0].II, R1.Report.Loops[0].MII)
      << "this loop meets its bound";
}

TEST(EndToEnd, Section2ExampleFourTimesFaster) {
  // The paper's introductory example: II=1 on the toy machine makes the
  // loop approach 4x the unpipelined speed (iteration length 4).
  auto Build = [](Program &P) {
    IRBuilder B(P);
    unsigned A = P.createArray("a", RegClass::Float, 1100);
    VReg K = B.fconst(1.0);
    ForStmt *L = B.beginForImm(0, 999);
    B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), K));
    B.endFor();
  };
  MachineDescription MD = MachineDescription::toyCell();

  Program P1;
  Build(P1);
  CompileResult R1 = compileProgram(P1, MD, {});
  ASSERT_TRUE(R1.Ok) << R1.Error;
  SimResult S1 = simulate(R1.Code, P1, MD, {});
  ASSERT_TRUE(S1.State.Ok) << S1.State.Error;

  Program P2;
  Build(P2);
  CompilerOptions Off;
  Off.EnablePipelining = false;
  CompileResult R2 = compileProgram(P2, MD, Off);
  SimResult S2 = simulate(R2.Code, P2, MD, {});

  double Speedup = static_cast<double>(S2.Cycles) / S1.Cycles;
  EXPECT_GT(Speedup, 3.5) << "paper reports 4x for this example";
  EXPECT_LE(Speedup, 4.5);
}

TEST(EndToEnd, ReportsCarryScheduleQuality) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 128);
  VReg K = B.fconst(2.0);
  ForStmt *L = B.beginForImm(0, 99);
  (void)L;
  B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), K));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  CompileResult R = compileProgram(P, MD, {});
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Report.Loops.size(), 1u);
  const LoopReport &Rep = R.Report.Loops[0];
  EXPECT_TRUE(Rep.attempted());
  EXPECT_TRUE(Rep.pipelined());
  EXPECT_GE(Rep.II, Rep.MII);
  EXPECT_GT(Rep.UnpipelinedLen, Rep.II);
  EXPECT_GE(Rep.Stages, 2u);
  EXPECT_GT(Rep.KernelInsts, 0u);
  EXPECT_FALSE(Rep.HasConditionals);
}

TEST(EndToEnd, DynamicUtilizationMatchesHandCount) {
  // a[i] = a[i] + 2.0 for 100 iterations: each iteration executes exactly
  // one load, one add, one store — regardless of pipelining, unroll, or
  // how iterations split between kernel and cleanup — so the simulator's
  // per-resource busy counters are exact: 200 memory-port unit-cycles,
  // 100 adder, zero multiplier/queue.
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 128);
  VReg K = B.fconst(2.0);
  ForStmt *L = B.beginForImm(0, 99);
  (void)L;
  B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), K));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  CompileResult R = compileProgram(P, MD, {});
  ASSERT_TRUE(R.Ok) << R.Error;

  SimResult Sim = simulate(R.Code, P, MD, ProgramInput{});
  ASSERT_TRUE(Sim.State.Ok) << Sim.State.Error;
  const UtilizationReport &U = Sim.Util;
  ASSERT_TRUE(U.measured());
  EXPECT_EQ(U.Cycles, Sim.Cycles);
  EXPECT_EQ(U.ExecCycles + U.StallCycles, U.Cycles);
  EXPECT_EQ(U.InputStallCycles + U.OutputStallCycles, U.StallCycles);
  EXPECT_EQ(U.StallCycles, 0u) << "no queue traffic, no stalls";
  EXPECT_EQ(U.OpsIssued, Sim.State.DynOps);
  auto Busy = [&](const char *Name) -> uint64_t {
    for (const ResourceUtilization &Res : U.Resources)
      if (Res.Name == Name)
        return Res.BusyUnitCycles;
    ADD_FAILURE() << "no resource named " << Name;
    return 0;
  };
  EXPECT_EQ(Busy("mem"), 200u);
  EXPECT_EQ(Busy("fadd"), 100u);
  EXPECT_EQ(Busy("fmul"), 0u);
  EXPECT_EQ(Busy("qin"), 0u);
  EXPECT_EQ(Busy("qout"), 0u);

  // The static kernel report on the same loop agrees per II window:
  // 2 memory references and 1 add per iteration.
  ASSERT_EQ(R.Report.Loops.size(), 1u);
  const UtilizationReport &KU = R.Report.Loops[0].KernelUtil;
  ASSERT_TRUE(R.Report.Loops[0].pipelined());
  ASSERT_TRUE(KU.measured());
  EXPECT_EQ(KU.Cycles, uint64_t(R.Report.Loops[0].II));
  auto KBusy = [&](const char *Name) -> uint64_t {
    for (const ResourceUtilization &Res : KU.Resources)
      if (Res.Name == Name)
        return Res.BusyUnitCycles;
    ADD_FAILURE() << "no resource named " << Name;
    return 0;
  };
  EXPECT_EQ(KBusy("mem"), 2u);
  EXPECT_EQ(KBusy("fadd"), 1u);
  EXPECT_DOUBLE_EQ(KU.bottleneckOccupancy(), 1.0)
      << "the memory port is the bottleneck and the schedule saturates it";
}

} // namespace

// ---------------------------------------------------------------------------
// w2c exit-code contract.
// ---------------------------------------------------------------------------

namespace {

/// Runs the driver in-process and returns (exit code, stdout, stderr).
struct DriverRun {
  int Exit;
  std::string Out;
  std::string Err;
};

DriverRun runDriver(std::vector<std::string> Args) {
  std::ostringstream Out, Err;
  int Exit = runW2C(Args, Out, Err);
  return {Exit, Out.str(), Err.str()};
}

/// Writes \p Source to a unique file under the test's temp dir and
/// returns the path (registered for no cleanup; the tree is ephemeral).
std::string writeSource(const std::string &Stem, const std::string &Source) {
  std::filesystem::path P =
      std::filesystem::temp_directory_path() / ("w2c-exit-" + Stem + ".w2");
  std::ofstream F(P);
  F << Source;
  return P.string();
}

const char GoodSource[] = R"(
  var a: float[16];
  begin
    for i := 0 to 15 do
      a[i] := a[i] + 1.0;
  end
)";

} // namespace

// The exit-code contract is API: scripts and the test driver branch on
// it. 0 ok, 1 usage/IO, 2 frontend rejection, 3 compile/verify failure,
// 4 compiled-but-degraded.
TEST(W2CExitCodes, OkCompileIsZero) {
  DriverRun R = runDriver({writeSource("ok", GoodSource)});
  EXPECT_EQ(R.Exit, W2CExitOk) << R.Err;
}

TEST(W2CExitCodes, UsageAndIOFailuresAreOne) {
  EXPECT_EQ(runDriver({"--definitely-not-a-flag"}).Exit, W2CExitUsage);
  EXPECT_EQ(runDriver({"/nonexistent/dir/input.w2"}).Exit, W2CExitUsage);
  EXPECT_EQ(runDriver({"--max-nodes=banana"}).Exit, W2CExitUsage);
  EXPECT_EQ(runDriver({"--min-rung=3"}).Exit, W2CExitUsage);
  EXPECT_EQ(runDriver({"--help"}).Exit, W2CExitOk);
}

TEST(W2CExitCodes, FrontendRejectionIsTwoWithAllDiagnostics) {
  // Two distinct broken statements: recovery must surface both before
  // the driver exits 2, proving one error no longer hides the next.
  DriverRun R = runDriver({writeSource("parse", R"(
    var a: float[16];
    begin
      a[0] := ;
      a[1] := 1.0
      a[2] := * 2.0;
    end
  )")});
  EXPECT_EQ(R.Exit, W2CExitParse);
  size_t Errors = 0;
  for (size_t At = 0; (At = R.Err.find("error", At)) != std::string::npos;
       ++At)
    ++Errors;
  EXPECT_GE(Errors, 2u) << "recovery lost diagnostics:\n" << R.Err;
}

TEST(W2CExitCodes, CompileFailureIsThree) {
  if (!faults::compiledIn())
    GTEST_SKIP() << "fault injection compiled out";
  // Post-emission corruption is unrecoverable by design; with --verify
  // the driver must report a compile/verify failure.
  DriverRun R = runDriver(
      {"--verify",
       "--chaos-seed=" + std::to_string(faults::chaosSeed(
                             faults::Site::CorruptEmission, 0)),
       writeSource("chaos", GoodSource)});
  EXPECT_EQ(R.Exit, W2CExitCompile) << R.Err;
  EXPECT_NE(R.Err.find("error"), std::string::npos);
}

TEST(W2CExitCodes, BudgetDegradedCompileIsFour) {
  DriverRun R = runDriver(
      {"--json", "--max-nodes=1", writeSource("degraded", GoodSource)});
  EXPECT_EQ(R.Exit, W2CExitDegraded) << R.Err;
  // The JSON report must carry the structured cause alongside the code.
  EXPECT_NE(R.Out.find("\"budget_tripped\""), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("compile budget exhausted"), std::string::npos)
      << R.Out;
}

// ---------------------------------------------------------------------------
// Service telemetry through the driver (see swp/Metrics/Metrics.h).
// ---------------------------------------------------------------------------

// --metrics must emit a self-consistent snapshot: one latency sample per
// session request, every cache lookup resolved as a hit or a miss, and
// the II-optimality-gap histogram populated by the real searches. The
// global registry accumulates across tests in this binary, so the
// assertions compare before/after deltas.
TEST(W2CMetrics, SnapshotIsSelfConsistent) {
  if (!metrics::compiledIn())
    GTEST_SKIP() << "metrics compiled out";
  metrics::MetricsRegistry &Reg = metrics::MetricsRegistry::global();
  metrics::MetricsSnapshot Before = Reg.snapshot();
  DriverRun R = runDriver({"--metrics", "--cache",
                           writeSource("metrics", GoodSource)});
  metrics::MetricsSnapshot After = Reg.snapshot();
  metrics::setEnabled(false); // Leave the process as this test found it.
  EXPECT_EQ(R.Exit, W2CExitOk) << R.Err;
  EXPECT_NE(R.Out.find("=== metrics ==="), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("swp_session_latency_us_count"), std::string::npos);

  auto CounterDelta = [&](const char *Name) {
    return After.counterTotal(Name) - Before.counterTotal(Name);
  };
  auto HistDelta = [&](const char *Name) {
    return After.histogramCountTotal(Name) - Before.histogramCountTotal(Name);
  };
  // Latency series exist in two layers since the per-target split: the
  // unlabeled aggregates and their target="..." refinements. Each
  // request records exactly one sample in each layer.
  auto HistLayerCount = [](const metrics::MetricsSnapshot &S,
                           const char *Name, bool TargetLabeled) {
    uint64_t Sum = 0;
    for (const metrics::SnapshotHistogram &H : S.Histograms)
      if (H.Name == Name &&
          (H.Labels.find("target=") != std::string::npos) == TargetLabeled)
        Sum += H.Count;
    return Sum;
  };
  auto HistLayerDelta = [&](const char *Name, bool TargetLabeled) {
    return HistLayerCount(After, Name, TargetLabeled) -
           HistLayerCount(Before, Name, TargetLabeled);
  };
  uint64_t Requests = CounterDelta("swp_session_requests_total");
  EXPECT_GT(Requests, 0u);
  EXPECT_EQ(HistLayerDelta("swp_session_latency_us", false), Requests);
  EXPECT_EQ(HistLayerDelta("swp_session_latency_us", true), Requests);
  uint64_t Lookups = CounterDelta("swp_cache_lookups_total");
  EXPECT_GT(Lookups, 0u);
  EXPECT_EQ(CounterDelta("swp_cache_hits_total") +
                CounterDelta("swp_cache_misses_total"),
            Lookups);
  EXPECT_GT(HistDelta("swp_sched_ii_gap"), 0u);
  EXPECT_GT(CounterDelta("swp_compile_total"), 0u);
}

// --json owns stdout; combining it with --metrics requires a file sink.
TEST(W2CMetrics, JsonModeRequiresMetricsOut) {
  DriverRun R = runDriver({"--json", "--metrics",
                           writeSource("metrics-json", GoodSource)});
  EXPECT_EQ(R.Exit, W2CExitUsage);
  metrics::setEnabled(false);

  std::filesystem::path OutFile =
      std::filesystem::temp_directory_path() / "w2c-metrics-out.prom";
  std::filesystem::remove(OutFile);
  DriverRun R2 = runDriver({"--json",
                            "--metrics-out=" + OutFile.string(),
                            writeSource("metrics-json", GoodSource)});
  metrics::setEnabled(false);
  EXPECT_EQ(R2.Exit, W2CExitOk) << R2.Err;
  // stdout stayed pure JSON; the exposition went to the file.
  EXPECT_EQ(R2.Out.find("=== metrics ==="), std::string::npos);
  std::ifstream In(OutFile);
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_NE(SS.str().find("# TYPE swp_session_latency_us histogram"),
            std::string::npos);
  std::filesystem::remove(OutFile);
}
