//===- ParserFuzzTests.cpp - byte-level frontend fuzzing -----------------------===//
//
// Part of warp-swp.
//
// The W2 frontend's totality contract, attacked three ways:
//   - pure random bytes (binary garbage the lexer must survive);
//   - token soup (valid W2 lexemes in random order, which gets past the
//     lexer and stresses parser recovery and the descent-depth guard);
//   - mutated valid programs (byte flips / splices of a known-good
//     source, the highest-yield corpus for resynchronization bugs).
//
// The property at every input: parseW2 terminates, never crashes, and
// emits a bounded number of diagnostics (the lexer caps at 64, the
// parser at 32, plus one "giving up" latch each); an accepted parse must
// carry zero errors. When a property fails, the harness shrinks the
// input by chunk removal (a ddmin-style minimizer) and writes the
// minimized repro under build/fuzz-repros/ so the failure is one
// `w2c <file>` away from a debugger.
//
// Runs under the ctest "fuzz" label next to the differential campaign.
//
//===----------------------------------------------------------------------===//

#include "swp/Lang/Parser.h"

#include "swp/Support/Diagnostics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <string>

using namespace swp;

namespace {

/// Caps from Lexer.cpp / Parser.cpp plus their two latch messages and
/// slack for the module-level epilogue diagnostics.
constexpr unsigned MaxDiagnostics = 64 + 32 + 4;

struct ParseOutcome {
  bool Accepted = false;
  unsigned Errors = 0;
};

ParseOutcome parseBytes(const std::string &Bytes) {
  DiagnosticEngine DE;
  std::optional<ModuleAST> M = parseW2(Bytes, DE);
  return {M.has_value(), DE.errorCount()};
}

/// The fuzz property. Empty string = no violation.
std::string violation(const std::string &Bytes) {
  ParseOutcome O = parseBytes(Bytes);
  if (O.Errors > MaxDiagnostics)
    return "diagnostic flood: " + std::to_string(O.Errors) + " errors";
  if (O.Accepted && O.Errors != 0)
    return "accepted a module while holding " + std::to_string(O.Errors) +
           " errors";
  return "";
}

/// ddmin-style chunk-removal minimizer: repeatedly try dropping
/// contiguous chunks (halving the chunk size each round) while
/// \p StillFails holds. Deterministic and quadratic-bounded, which is
/// plenty at fuzz-input sizes.
template <typename Pred>
std::string minimizeWith(std::string Bytes, Pred StillFails) {
  for (size_t Chunk = std::max<size_t>(1, Bytes.size() / 2); Chunk >= 1;
       Chunk /= 2) {
    bool Shrunk = true;
    while (Shrunk && Bytes.size() > 1) {
      Shrunk = false;
      for (size_t At = 0; At + Chunk <= Bytes.size(); At += Chunk) {
        std::string Cand = Bytes.substr(0, At) + Bytes.substr(At + Chunk);
        if (StillFails(Cand)) {
          Bytes = std::move(Cand);
          Shrunk = true;
          break;
        }
      }
    }
    if (Chunk == 1)
      break;
  }
  return Bytes;
}

std::string minimizeRepro(std::string Bytes) {
  return minimizeWith(std::move(Bytes),
                      [](const std::string &C) { return !violation(C).empty(); });
}

/// Writes a (minimized) failing input under build/fuzz-repros/ and
/// returns its path for the assertion message.
std::string writeRepro(const std::string &Family, uint64_t Seed,
                       const std::string &Bytes) {
  std::filesystem::path Dir = std::filesystem::current_path() / "fuzz-repros";
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::filesystem::path File =
      Dir / ("parser-" + Family + "-" + std::to_string(Seed) + ".w2");
  std::ofstream Out(File, std::ios::binary);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  return File.string();
}

/// Checks one input; on violation, minimizes, persists, and fails.
void checkInput(const std::string &Family, uint64_t Seed,
                const std::string &Bytes) {
  std::string V = violation(Bytes);
  if (V.empty())
    return;
  std::string Min = minimizeRepro(Bytes);
  std::string Path = writeRepro(Family, Seed, Min);
  FAIL() << Family << " seed " << Seed << ": " << V << " (minimized to "
         << Min.size() << " bytes, repro at " << Path << ")";
}

std::string randomBytes(std::mt19937_64 &Rng, size_t Len) {
  std::string S(Len, '\0');
  for (char &C : S)
    C = static_cast<char>(Rng() & 0xff);
  return S;
}

const char *const Lexemes[] = {
    "var",  "param", "begin", "end",  "for", "to",  "do",   "if",
    "then", "else",  "send",  "recv", ":=",  ";",   ":",    ",",
    "[",    "]",     "(",     ")",    "+",   "-",   "*",    "/",
    "<",    ">",     "=",     "a",    "i",   "x9",  "0",    "15",
    "2.5",  "float", "int",   "\n",   " ",   "\t",  "..",   "@",
};

std::string tokenSoup(std::mt19937_64 &Rng, size_t Tokens) {
  std::string S;
  for (size_t I = 0; I != Tokens; ++I) {
    S += Lexemes[Rng() % (sizeof(Lexemes) / sizeof(Lexemes[0]))];
    S += ' ';
  }
  return S;
}

const char ValidSource[] = R"(
  var a: float[16];
  var b: float[16];
  param k: float;
  begin
    for i := 0 to 15 do
    begin
      a[i] := a[i] + k;
      b[i] := a[i] * 2.0;
    end;
  end
)";

std::string mutateValid(std::mt19937_64 &Rng) {
  std::string S = ValidSource;
  unsigned Edits = 1 + static_cast<unsigned>(Rng() % 6);
  for (unsigned I = 0; I != Edits; ++I) {
    size_t At = Rng() % S.size();
    switch (Rng() % 3) {
    case 0: // Flip a byte.
      S[At] = static_cast<char>(Rng() & 0xff);
      break;
    case 1: // Delete a span.
      S.erase(At, 1 + Rng() % 8);
      break;
    default: // Splice a random lexeme in.
      S.insert(At, Lexemes[Rng() % (sizeof(Lexemes) / sizeof(Lexemes[0]))]);
      break;
    }
  }
  return S;
}

} // namespace

TEST(ParserFuzz, RandomBytesTerminateWithBoundedDiagnostics) {
  for (uint64_t Seed = 0; Seed != 300; ++Seed) {
    std::mt19937_64 Rng(0xb10b'0000 + Seed);
    checkInput("bytes", Seed, randomBytes(Rng, 1 + Rng() % 512));
  }
}

TEST(ParserFuzz, TokenSoupTerminatesWithBoundedDiagnostics) {
  for (uint64_t Seed = 0; Seed != 300; ++Seed) {
    std::mt19937_64 Rng(0x50a9'0000 + Seed);
    checkInput("soup", Seed, tokenSoup(Rng, 1 + Rng() % 200));
  }
}

TEST(ParserFuzz, MutatedProgramsTerminateWithBoundedDiagnostics) {
  ASSERT_EQ(violation(ValidSource), "") << "corpus seed must be clean";
  for (uint64_t Seed = 0; Seed != 400; ++Seed) {
    std::mt19937_64 Rng(0x3d17'0000 + Seed);
    checkInput("mut", Seed, mutateValid(Rng));
  }
}

TEST(ParserFuzz, DeepNestingHitsDepthGuardNotTheStack) {
  // 10k nested parens / begins: the DepthGuard must reject these with a
  // diagnostic instead of a stack overflow.
  std::string Parens = "begin x := " + std::string(10000, '(') + "1" +
                       std::string(10000, ')') + "; end";
  checkInput("deep-parens", 0, Parens);
  EXPECT_FALSE(parseBytes(Parens).Accepted);

  std::string Blocks = "begin ";
  for (int I = 0; I != 10000; ++I)
    Blocks += "begin ";
  checkInput("deep-blocks", 0, Blocks);
  EXPECT_FALSE(parseBytes(Blocks).Accepted);
}

TEST(ParserFuzz, MinimizerShrinksToTheFailingCore) {
  // The minimizer runs exactly when something is already wrong, so it
  // gets its own unit test on a synthetic predicate: a haystack with one
  // load-bearing byte must shrink to just that byte, and an input whose
  // failure needs two separated bytes must keep both.
  std::string One(900, 'a');
  One[444] = 'X';
  EXPECT_EQ(minimizeWith(One, [](const std::string &C) {
              return C.find('X') != std::string::npos;
            }),
            "X");

  std::string Two(600, 'b');
  Two[100] = 'X';
  Two[500] = 'Y';
  std::string Min = minimizeWith(Two, [](const std::string &C) {
    return C.find('X') != std::string::npos &&
           C.find('Y') != std::string::npos;
  });
  EXPECT_EQ(Min, "XY");
}
