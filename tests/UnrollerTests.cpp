//===- UnrollerTests.cpp - source unrolling semantics -------------------------===//
//
// Part of warp-swp.
//
// The unroller must preserve sequential semantics exactly: every scenario
// is built twice, one copy unrolled, and both interpreted to the same
// final state — across factors, remainders, accumulators, conditionals,
// and induction-variable value uses.
//
//===----------------------------------------------------------------------===//

#include "swp/Pipeliner/Unroller.h"

#include "swp/IR/IRBuilder.h"
#include "swp/IR/Verifier.h"
#include "swp/Interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

using BuildFn = std::function<ProgramInput(Program &, int64_t)>;

struct UnrollCase {
  std::string Name;
  BuildFn Build;
};

std::vector<UnrollCase> unrollCases() {
  std::vector<UnrollCase> C;
  C.push_back({"copy-shift", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 128);
                 unsigned Bb = P.createArray("b", RegClass::Float, 128);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.fstore(Bb, B.ix(L), B.fmul(B.fload(A, B.ix(L)),
                                              B.fconst(2.0)));
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[A].push_back(0.5f * I);
                 return In;
               }});
  C.push_back({"accumulator", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned X = P.createArray("x", RegClass::Float, 128);
                 unsigned Out = P.createArray("o", RegClass::Float, 1);
                 VReg Acc = P.createVReg(RegClass::Float, "acc");
                 B.assignUn(Acc, Opcode::FMov, B.fconst(0.0));
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.assign(Acc, Opcode::FAdd, Acc, B.fload(X, B.ix(L)));
                 B.endFor();
                 B.fstore(Out, B.cx(0), Acc);
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[X].push_back(0.25f * I - 3.0f);
                 return In;
               }});
  C.push_back({"recurrence", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 130);
                 ForStmt *L = B.beginForImm(1, N);
                 B.fstore(A, B.ix(L),
                          B.fadd(B.fmul(B.fload(A, B.ix(L, 1, -1)),
                                        B.fconst(0.5)),
                                 B.fconst(1.0)));
                 B.endFor();
                 ProgramInput In;
                 In.FloatArrays[A] = {2.0f};
                 return In;
               }});
  C.push_back({"indvar-value", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned A = P.createArray("a", RegClass::Float, 128);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 B.fstore(A, B.ix(L), B.i2f(L->IndVar));
                 B.endFor();
                 return ProgramInput{};
               }});
  C.push_back({"conditional", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 unsigned X = P.createArray("x", RegClass::Float, 128);
                 unsigned Y = P.createArray("y", RegClass::Float, 128);
                 VReg Zero = B.fconst(0.0);
                 ForStmt *L = B.beginForImm(0, N - 1);
                 VReg V = B.fload(X, B.ix(L));
                 VReg Neg = B.binop(Opcode::FCmpLT, V, Zero);
                 VReg R = P.createVReg(RegClass::Float);
                 B.assignMov(R, V);
                 B.beginIf(Neg);
                 B.assignUn(R, Opcode::FNeg, V);
                 B.endIf();
                 B.fstore(Y, B.ix(L), R);
                 B.endFor();
                 ProgramInput In;
                 for (int I = 0; I != 128; ++I)
                   In.FloatArrays[X].push_back((I % 3 - 1) * 0.5f * I);
                 return In;
               }});
  C.push_back({"nested", [](Program &P, int64_t N) {
                 IRBuilder B(P);
                 int64_t Dim = std::min<int64_t>(N, 10);
                 unsigned M = P.createArray("m", RegClass::Float, 128);
                 ForStmt *I = B.beginForImm(0, Dim - 1);
                 ForStmt *J = B.beginForImm(0, Dim - 1);
                 AffineExpr Ix = B.ix(I, Dim) + B.ix(J);
                 B.fstore(M, Ix, B.fadd(B.fload(M, Ix), B.fconst(1.0)));
                 B.endFor();
                 B.endFor();
                 ProgramInput In;
                 for (int V = 0; V != 128; ++V)
                   In.FloatArrays[M].push_back(0.125f * V);
                 return In;
               }});
  return C;
}

class UnrollerSemantics
    : public ::testing::TestWithParam<std::tuple<size_t, unsigned, int64_t>> {
};

TEST_P(UnrollerSemantics, PreservesSequentialState) {
  auto [CaseIdx, Factor, N] = GetParam();
  static const std::vector<UnrollCase> Cases = unrollCases();
  const UnrollCase &C = Cases[CaseIdx];

  Program Original;
  ProgramInput In = C.Build(Original, N);
  Program Unrolled;
  (void)C.Build(Unrolled, N);
  unrollInnermostLoops(Unrolled, Factor);

  DiagnosticEngine DE;
  ASSERT_TRUE(verifyProgram(Unrolled, DE)) << C.Name << "\n" << DE.str();

  ProgramState A = interpret(Original, In);
  ProgramState B = interpret(Unrolled, In);
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(compareStates(Original, A, B), "")
      << C.Name << " factor=" << Factor << " n=" << N;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, UnrollerSemantics,
    ::testing::Combine(::testing::Range<size_t>(0, unrollCases().size()),
                       ::testing::Values(2u, 3u, 4u, 8u),
                       ::testing::Values<int64_t>(1, 5, 8, 16, 23)));

TEST(Unroller, FactorOneIsNoop) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 16);
  ForStmt *L = B.beginForImm(0, 15);
  B.fstore(A, B.ix(L), B.fconst(1.0));
  B.endFor();
  EXPECT_EQ(unrollInnermostLoops(P, 1), 0u);
  EXPECT_EQ(P.Body.size(), 1u);
}

TEST(Unroller, RuntimeBoundsAreSkipped) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  VReg N = P.createVReg(RegClass::Int, "n", true);
  ForStmt *L = B.beginForReg(0, N);
  B.fstore(A, B.ix(L), B.fconst(1.0));
  B.endFor();
  EXPECT_EQ(unrollInnermostLoops(P, 4), 0u);
}

TEST(Unroller, MainAndRemainderStructure) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  ForStmt *L = B.beginForImm(0, 13); // 14 iterations, factor 4: 3 + rem 2.
  B.fstore(A, B.ix(L), B.fconst(1.0));
  B.endFor();
  ASSERT_EQ(unrollInnermostLoops(P, 4), 1u);
  // Body now holds the main loop and the remainder loop.
  unsigned NumLoops = 0, MainOps = 0, RemTrip = 0;
  for (const StmtPtr &S : P.Body)
    if (const auto *For = dyn_cast<ForStmt>(S.get())) {
      ++NumLoops;
      if (For->staticTripCount() == 3)
        MainOps = countOps(For->Body);
      if (For->staticTripCount() == 2)
        RemTrip = 2;
    }
  EXPECT_EQ(NumLoops, 2u);
  EXPECT_EQ(MainOps, 8u) << "4 copies of (fconst + fstore)";
  EXPECT_EQ(RemTrip, 2u);
}

} // namespace
