//===- PipelinerTests.cpp - Modulo scheduler / MVE / reduction unit tests -----===//
//
// Part of warp-swp.
//
//===----------------------------------------------------------------------===//

#include "swp/Pipeliner/HierarchicalReducer.h"
#include "swp/Pipeliner/LoopUtils.h"
#include "swp/Pipeliner/ModuloScheduler.h"
#include "swp/Pipeliner/ModuloVariableExpansion.h"

#include "swp/DDG/DDGBuilder.h"
#include "swp/IR/IRBuilder.h"
#include "swp/Sched/ListScheduler.h"
#include "swp/Sched/ReservationTables.h"
#include "swp/Sched/Utilization.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

DepGraph loopGraph(const Program &P, const ForStmt *L,
                   const MachineDescription &MD,
                   std::set<unsigned> Expanded = {}) {
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = L->LoopId;
  Opts.ExpandedRegs = std::move(Expanded);
  return buildLoopDepGraph(reduceBodyToUnits(L->Body, MD, L->LoopId), MD,
                           Opts);
}

} // namespace

TEST(ModuloReservation, FoldsUsage) {
  MachineDescription MD = MachineDescription::warpCell();
  ModuloReservationTable MRT(MD, 3);
  Operation Load;
  Load.Opc = Opcode::FLoad;
  Load.Def = VReg(0);
  ScheduleUnit U = ScheduleUnit::makeSimple(Load, MD);
  EXPECT_TRUE(MRT.canPlace(U, 0));
  MRT.place(U, 0);
  // Cycle 3 folds onto row 0: the single memory port is taken.
  EXPECT_FALSE(MRT.canPlace(U, 3));
  EXPECT_TRUE(MRT.canPlace(U, 1));
  MRT.place(U, 1);
  MRT.remove(U, 0);
  EXPECT_TRUE(MRT.canPlace(U, 3));
}

TEST(ModuloScheduler, VectorAddToyHitsIIOne) {
  // Section 2 example: Read / Add / Write pipelines at II = 1.
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), K));
  B.endFor();
  MachineDescription MD = MachineDescription::toyCell();
  DepGraph G = loopGraph(P, L, MD);
  ModuloScheduleResult R = moduloSchedule(G, MD);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.MII, 1u);
  EXPECT_EQ(R.II, 1u);
  // Read at 0, Add at 1, Write at 3: four iterations overlap.
  EXPECT_EQ(R.Sched.startOf(0), 0);
  EXPECT_EQ(R.Sched.startOf(1), 1);
  EXPECT_EQ(R.Sched.startOf(2), 3);
  EXPECT_EQ(R.Stages, 4u);
}

TEST(ModuloScheduler, RecurrenceBoundIsAchieved) {
  // a[i] = a[i-1]*b + c on Warp: RecMII = 18 and the scheduler meets it.
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 256);
  VReg Cb = P.createVReg(RegClass::Float, "b", /*LiveIn=*/true);
  VReg Cc = P.createVReg(RegClass::Float, "c", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(1, 200);
  B.fstore(A, B.ix(L), B.fadd(B.fmul(B.fload(A, B.ix(L, 1, -1)), Cb), Cc));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = loopGraph(P, L, MD);
  ModuloScheduleResult R = moduloSchedule(G, MD);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.RecMII, 18u);
  EXPECT_EQ(R.II, 18u);
  EXPECT_TRUE(R.Sched.satisfiesPrecedence(G, R.II));
}

TEST(ModuloScheduler, ResourceBoundDominatesMemoryHeavyLoop) {
  // b[i] = x[i] + y[i]: three memory references, one port: II = 3.
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  unsigned Y = P.createArray("y", RegClass::Float, 64);
  unsigned Bb = P.createArray("b", RegClass::Float, 64);
  ForStmt *L = B.beginForImm(0, 63);
  B.fstore(Bb, B.ix(L), B.fadd(B.fload(X, B.ix(L)), B.fload(Y, B.ix(L))));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = loopGraph(P, L, MD);
  ModuloScheduleResult R = moduloSchedule(G, MD);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.ResMII, 3u);
  EXPECT_EQ(R.II, 3u);
}

TEST(ModuloScheduler, KernelUtilizationMatchesHandCount) {
  // b[i] = x[i] + y[i] at II = 3: the three memory references fill every
  // modulo row of the single port (100% — the paper's efficiency measure
  // says this kernel is memory-bound and optimal), the one add occupies a
  // third of the adder, and nothing touches the multiplier or queues.
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  unsigned Y = P.createArray("y", RegClass::Float, 64);
  unsigned Bb = P.createArray("b", RegClass::Float, 64);
  ForStmt *L = B.beginForImm(0, 63);
  B.fstore(Bb, B.ix(L), B.fadd(B.fload(X, B.ix(L)), B.fload(Y, B.ix(L))));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = loopGraph(P, L, MD);
  ModuloScheduleResult R = moduloSchedule(G, MD);
  ASSERT_TRUE(R.Success);
  ASSERT_EQ(R.II, 3u);

  UtilizationReport U = scheduleUtilization(G, R.Sched, R.II, MD);
  ASSERT_TRUE(U.measured());
  EXPECT_EQ(U.Cycles, 3u);
  EXPECT_EQ(U.OpsIssued, 4u); // 2 loads + 1 add + 1 store.
  auto Busy = [&](const char *Name) -> uint64_t {
    for (const ResourceUtilization &Res : U.Resources)
      if (Res.Name == Name)
        return Res.BusyUnitCycles;
    ADD_FAILURE() << "no resource named " << Name;
    return 0;
  };
  EXPECT_EQ(Busy("mem"), 3u);
  EXPECT_EQ(Busy("fadd"), 1u);
  EXPECT_EQ(Busy("fmul"), 0u);
  EXPECT_EQ(Busy("qin"), 0u);
  EXPECT_EQ(Busy("qout"), 0u);
  EXPECT_DOUBLE_EQ(U.bottleneckOccupancy(), 1.0);
  EXPECT_DOUBLE_EQ(U.issueFillRate(), 4.0 / 3.0);
}

TEST(ModuloScheduler, MaxStagesLimitForcesLargerII) {
  // FPS-164 mode: allowing only 2 overlapped iterations inflates the II.
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  unsigned Yy = P.createArray("y", RegClass::Float, 64);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  VReg V = B.fload(X, B.ix(L));
  B.fstore(Yy, B.ix(L), B.fmul(B.fadd(V, K), K));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = loopGraph(P, L, MD);

  ModuloScheduleResult Free = moduloSchedule(G, MD);
  ASSERT_TRUE(Free.Success);

  ModuloScheduleOptions Limited;
  Limited.MaxStages = 2;
  ModuloScheduleResult Lim = moduloSchedule(G, MD, Limited);
  ASSERT_TRUE(Lim.Success);
  EXPECT_LE(Lim.Stages, 2u);
  EXPECT_GT(Lim.II, Free.II);
}

TEST(ModuloScheduler, BinarySearchAlsoFindsSchedules) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  B.fstore(A, B.ix(L), B.fmul(B.fload(A, B.ix(L)), K));
  B.endFor();
  MachineDescription MD = MachineDescription::warpCell();
  DepGraph G = loopGraph(P, L, MD);
  ModuloScheduleOptions Opts;
  Opts.BinarySearch = true;
  ModuloScheduleResult R = moduloSchedule(G, MD, Opts);
  ASSERT_TRUE(R.Success);
  EXPECT_TRUE(R.Sched.satisfiesPrecedence(G, R.II));
}

TEST(ModuloScheduler, BinarySearchTerminatesAtMIIOne) {
  // Regression: the binary-search ablation carried a dead `Mid == 0`
  // guard and decremented Hi past Lo; with MII = 1 (the smallest legal
  // interval, immediately schedulable) the search must terminate on the
  // Mid == Lo success exit and still report the optimal interval.
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), K));
  B.endFor();
  MachineDescription MD = MachineDescription::toyCell();
  DepGraph G = loopGraph(P, L, MD);
  ModuloScheduleOptions Opts;
  Opts.BinarySearch = true;
  ModuloScheduleResult R = moduloSchedule(G, MD, Opts);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.MII, 1u);
  EXPECT_EQ(R.II, 1u);
  EXPECT_TRUE(R.Sched.satisfiesPrecedence(G, R.II));

  // The serial linear search finds the same interval and issue length.
  ModuloScheduleResult Linear = moduloSchedule(G, MD);
  ASSERT_TRUE(Linear.Success);
  EXPECT_EQ(Linear.II, R.II);
  EXPECT_EQ(Linear.Sched.issueLength(), R.Sched.issueLength());
}

TEST(MVE, RotatingRegisterExample) {
  // The section 2.3 example: def(R) ... use(R) two cycles later with
  // II = 1 needs 2 locations -> unroll 2.
  MachineDescription MD = MachineDescription::toyCell();
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  unsigned Bb = P.createArray("b", RegClass::Float, 64);
  ForStmt *L = B.beginForImm(0, 63);
  VReg T = B.fload(A, B.ix(L)); // latency 1
  B.fstore(Bb, B.ix(L), T);
  B.endFor();
  std::vector<ScheduleUnit> Units = reduceBodyToUnits(L->Body, MD, L->LoopId);
  std::set<unsigned> Eligible = mveEligibleRegs(Units, {}, P);
  EXPECT_TRUE(Eligible.count(T.Id));

  DDGBuildOptions Opts;
  Opts.CurrentLoopId = L->LoopId;
  Opts.ExpandedRegs = Eligible;
  DepGraph G = buildLoopDepGraph(Units, MD, Opts);
  ModuloScheduleResult R = moduloSchedule(G, MD);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.II, 1u);

  MVEPlan Plan = planModuloVariableExpansion(Units, R.Sched, R.II, Eligible,
                                             MVEPolicy::MinCodeSize);
  // Load at 0 commits at 1; store reads at 1: lifetime 1 -> one location
  // ... unless the scheduler stretched it; accept >= 1 and consistency.
  EXPECT_GE(Plan.copiesOf(T.Id), 1u);
  EXPECT_EQ(Plan.Unroll % Plan.copiesOf(T.Id), 0u);
}

TEST(MVE, LongLatencyNeedsMoreCopies) {
  MachineDescription MD = MachineDescription::warpCell();
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 64);
  unsigned Bb = P.createArray("b", RegClass::Float, 64);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 63);
  VReg T = B.fmul(B.fload(A, B.ix(L)), K); // 7-cycle producer
  B.fstore(Bb, B.ix(L), T);
  B.endFor();
  std::vector<ScheduleUnit> Units = reduceBodyToUnits(L->Body, MD, L->LoopId);
  std::set<unsigned> Eligible = mveEligibleRegs(Units, {}, P);
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = L->LoopId;
  Opts.ExpandedRegs = Eligible;
  DepGraph G = buildLoopDepGraph(Units, MD, Opts);
  ModuloScheduleResult R = moduloSchedule(G, MD);
  ASSERT_TRUE(R.Success);
  // One memory port, two references: II = 2.
  EXPECT_EQ(R.II, 2u);
  MVEPlan Max = planModuloVariableExpansion(Units, R.Sched, R.II, Eligible,
                                            MVEPolicy::MinCodeSize);
  MVEPlan Lcm = planModuloVariableExpansion(Units, R.Sched, R.II, Eligible,
                                            MVEPolicy::MinRegisters);
  EXPECT_GE(Max.Unroll, 1u);
  for (const auto &[Id, Copies] : Max.Copies) {
    EXPECT_EQ(Max.Unroll % Copies, 0u)
        << "copy counts must divide the unroll degree";
    EXPECT_GE(Copies, Lcm.copiesOf(Id))
        << "min-code-size policy may only round copy counts up";
  }
}

TEST(MVE, AccumulatorIneligible) {
  MachineDescription MD = MachineDescription::warpCell();
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  VReg Acc = P.createVReg(RegClass::Float, "acc");
  B.assignUn(Acc, Opcode::FMov, B.fconst(0.0));
  ForStmt *L = B.beginForImm(0, 63);
  B.assign(Acc, Opcode::FAdd, Acc, B.fload(X, B.ix(L)));
  B.endFor();
  std::vector<ScheduleUnit> Units = reduceBodyToUnits(L->Body, MD, L->LoopId);
  std::set<unsigned> Eligible = mveEligibleRegs(Units, {}, P);
  EXPECT_FALSE(Eligible.count(Acc.Id))
      << "read-before-write registers carry values across iterations";
}

TEST(MVE, PredicatedDefIneligible) {
  MachineDescription MD = MachineDescription::warpCell();
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  unsigned Yy = P.createArray("y", RegClass::Float, 64);
  VReg Zero = B.fconst(0.0);
  VReg T = P.createVReg(RegClass::Float, "t");
  B.assignMov(T, Zero);
  ForStmt *L = B.beginForImm(0, 63);
  VReg V = B.fload(X, B.ix(L));
  VReg Neg = B.binop(Opcode::FCmpLT, V, Zero);
  B.beginIf(Neg);
  B.assignUn(T, Opcode::FNeg, V);
  B.endIf();
  B.fstore(Yy, B.ix(L), T);
  B.endFor();
  std::vector<ScheduleUnit> Units = reduceBodyToUnits(L->Body, MD, L->LoopId);
  std::set<unsigned> Eligible = mveEligibleRegs(Units, {}, P);
  EXPECT_FALSE(Eligible.count(T.Id))
      << "a conditionally written register is not redefined every iteration";
  EXPECT_TRUE(Eligible.count(V.Id));
}

TEST(HierarchicalReduction, UnionReservationIsMaxOfBranches) {
  MachineDescription MD = MachineDescription::warpCell();
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  unsigned Yy = P.createArray("y", RegClass::Float, 64);
  VReg Zero = B.fconst(0.0);
  ForStmt *L = B.beginForImm(0, 63);
  VReg V = B.fload(X, B.ix(L));
  VReg Cond = B.binop(Opcode::FCmpLT, V, Zero);
  VReg R = P.createVReg(RegClass::Float);
  B.beginIf(Cond);
  // THEN: two adder ops in sequence.
  B.assignUn(R, Opcode::FNeg, B.fadd(V, V));
  B.beginElse();
  // ELSE: one adder op.
  B.assignUn(R, Opcode::FMov, V);
  B.endIf();
  B.fstore(Yy, B.ix(L), R);
  B.endFor();

  std::vector<ScheduleUnit> Units = reduceBodyToUnits(L->Body, MD, L->LoopId);
  // load, compare, reduced-if, store.
  ASSERT_EQ(Units.size(), 4u);
  const ScheduleUnit &IfUnit = Units[2];
  EXPECT_TRUE(IfUnit.isReduced());
  // Both branches' ops are present, predicated both ways.
  bool SawThen = false, SawElse = false;
  for (const UnitOp &UO : IfUnit.ops()) {
    ASSERT_FALSE(UO.Preds.empty());
    (UO.Preds[0].Negated ? SawElse : SawThen) = true;
  }
  EXPECT_TRUE(SawThen);
  EXPECT_TRUE(SawElse);

  // Union reservation: the adder is used at most once per cycle even
  // though both branches use it (max, not sum).
  unsigned FAddRes = MD.opcodeInfo(Opcode::FAdd).Uses[0].ResId;
  for (const ResourceUse &Use : IfUnit.reservation())
    if (Use.ResId == FAddRes)
      EXPECT_LE(Use.Units, 1u);

  // The reduced loop still pipelines.
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = L->LoopId;
  DepGraph G = buildLoopDepGraph(Units, MD, Opts);
  ModuloScheduleResult MS = moduloSchedule(G, MD);
  ASSERT_TRUE(MS.Success);
  EXPECT_LT(MS.II, static_cast<unsigned>(
                       unpipelinedPeriod(G, listSchedule(G, MD))));
}

TEST(HierarchicalReduction, NestedConditionalsStackPredicates) {
  MachineDescription MD = MachineDescription::warpCell();
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  VReg Zero = B.fconst(0.0);
  VReg One = B.fconst(1.0);
  ForStmt *L = B.beginForImm(0, 63);
  VReg V = B.fload(X, B.ix(L));
  VReg C1 = B.binop(Opcode::FCmpLT, V, Zero);
  VReg C2 = B.binop(Opcode::FCmpLT, One, V);
  VReg R = P.createVReg(RegClass::Float);
  B.assignMov(R, V);
  B.beginIf(C1);
  B.beginIf(C2);
  B.assignUn(R, Opcode::FNeg, V);
  B.endIf();
  B.endIf();
  B.fstore(X, B.ix(L), R);
  B.endFor();

  std::vector<ScheduleUnit> Units = reduceBodyToUnits(L->Body, MD, L->LoopId);
  bool SawDouble = false;
  for (const ScheduleUnit &U : Units)
    for (const UnitOp &UO : U.ops())
      if (UO.Preds.size() == 2)
        SawDouble = true;
  EXPECT_TRUE(SawDouble) << "nested IFs must stack predicate terms";
}

TEST(LoopUtils, LiveOutAndIndVar) {
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  unsigned Out = P.createArray("out", RegClass::Float, 1);
  VReg Acc = P.createVReg(RegClass::Float, "acc");
  B.assignUn(Acc, Opcode::FMov, B.fconst(0.0));
  ForStmt *L = B.beginForImm(0, 63);
  VReg V = B.fload(X, B.ix(L));
  B.assign(Acc, Opcode::FAdd, Acc, V);
  B.endFor();
  B.fstore(Out, B.cx(0), Acc);

  std::set<unsigned> LiveOut = liveOutRegs(P, *L);
  EXPECT_TRUE(LiveOut.count(Acc.Id));
  EXPECT_FALSE(LiveOut.count(V.Id));
  EXPECT_FALSE(usesIndVarAsValue(*L));

  LoopPrep Prep = prepareLoopForCodegen(P, *L);
  EXPECT_FALSE(Prep.IndVarMaterialized);
  EXPECT_TRUE(Prep.Preheader.empty());
}

TEST(LoopUtils, IndVarMaterializationIsIdempotent) {
  Program P;
  IRBuilder B(P);
  unsigned X = P.createArray("x", RegClass::Float, 64);
  ForStmt *L = B.beginForImm(0, 63);
  B.fstore(X, B.ix(L), B.i2f(L->IndVar));
  B.endFor();
  EXPECT_TRUE(usesIndVarAsValue(*L));
  size_t Before = L->Body.size();
  LoopPrep First = prepareLoopForCodegen(P, *L);
  EXPECT_TRUE(First.IndVarMaterialized);
  EXPECT_EQ(L->Body.size(), Before + 1);
  EXPECT_EQ(First.Preheader.size(), 2u);
  LoopPrep Second = prepareLoopForCodegen(P, *L);
  EXPECT_TRUE(Second.IndVarMaterialized);
  EXPECT_TRUE(Second.Preheader.empty());
  EXPECT_EQ(L->Body.size(), Before + 1);
}

TEST(LoopUtils, InnermostDetection) {
  Program P;
  IRBuilder B(P);
  ForStmt *Outer = B.beginForImm(0, 3);
  ForStmt *Inner = B.beginForImm(0, 3);
  B.endFor();
  B.endFor();
  EXPECT_FALSE(isInnermost(*Outer));
  EXPECT_TRUE(isInnermost(*Inner));
  auto Loops = innermostLoops(P.Body);
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(Loops[0], Inner);
}
