//===- MachineTests.cpp - Unit tests for swp_machine --------------------------===//
//
// Part of warp-swp.
//
//===----------------------------------------------------------------------===//

#include "swp/Machine/MachineDescription.h"

#include <gtest/gtest.h>

using namespace swp;

TEST(Opcode, NamesAreStable) {
  EXPECT_STREQ(opcodeName(Opcode::FAdd), "fadd");
  EXPECT_STREQ(opcodeName(Opcode::FMul), "fmul");
  EXPECT_STREQ(opcodeName(Opcode::FStore), "fstore");
  EXPECT_STREQ(opcodeName(Opcode::Recv), "recv");
  EXPECT_STREQ(opcodeName(Opcode::Nop), "nop");
}

TEST(Opcode, Classification) {
  EXPECT_TRUE(isLibraryPseudo(Opcode::FInv));
  EXPECT_TRUE(isLibraryPseudo(Opcode::FSqrt));
  EXPECT_TRUE(isLibraryPseudo(Opcode::FExp));
  EXPECT_FALSE(isLibraryPseudo(Opcode::FAdd));
  EXPECT_TRUE(isLoad(Opcode::FLoad));
  EXPECT_TRUE(isLoad(Opcode::ILoad));
  EXPECT_FALSE(isLoad(Opcode::FStore));
  EXPECT_TRUE(isStore(Opcode::IStore));
  EXPECT_TRUE(isMemAccess(Opcode::FLoad));
  EXPECT_FALSE(isMemAccess(Opcode::IAdd));
}

TEST(WarpCell, SevenCyclePipelinedFloatingUnits) {
  MachineDescription MD = MachineDescription::warpCell();
  // "multiplications and additions take 7 cycles to complete" -- section 1.
  EXPECT_EQ(MD.opcodeInfo(Opcode::FAdd).Latency, 7u);
  EXPECT_EQ(MD.opcodeInfo(Opcode::FMul).Latency, 7u);
  // Fully pipelined: the reservation pattern occupies one slot only.
  EXPECT_EQ(MD.opcodeInfo(Opcode::FAdd).Uses.size(), 1u);
  EXPECT_EQ(MD.opcodeInfo(Opcode::FAdd).Uses[0].Cycle, 0u);
  // Adder and multiplier are distinct resources.
  EXPECT_NE(MD.opcodeInfo(Opcode::FAdd).Uses[0].ResId,
            MD.opcodeInfo(Opcode::FMul).Uses[0].ResId);
}

TEST(WarpCell, RegisterFilesAndClock) {
  MachineDescription MD = MachineDescription::warpCell();
  // Two 31-word FP files modeled as one 62-word file; 64-word ALU file.
  EXPECT_EQ(MD.registerFileSize(RegClass::Float), 62u);
  EXPECT_EQ(MD.registerFileSize(RegClass::Int), 64u);
  EXPECT_EQ(MD.registerFileSize(RegClass::None), 0u);
  // 5 MHz * 2 flops/cycle = the 10 MFLOPS peak of one cell.
  EXPECT_DOUBLE_EQ(MD.clockMHz(), 5.0);
}

TEST(WarpCell, PseudosAreIllegal) {
  MachineDescription MD = MachineDescription::warpCell();
  EXPECT_FALSE(MD.isLegal(Opcode::FInv));
  EXPECT_FALSE(MD.isLegal(Opcode::FSqrt));
  EXPECT_FALSE(MD.isLegal(Opcode::FExp));
  EXPECT_TRUE(MD.isLegal(Opcode::FRecipSeed));
  EXPECT_TRUE(MD.isLegal(Opcode::FAdd));
}

TEST(WarpCell, FlopAccounting) {
  MachineDescription MD = MachineDescription::warpCell();
  EXPECT_TRUE(MD.opcodeInfo(Opcode::FAdd).IsFlop);
  EXPECT_TRUE(MD.opcodeInfo(Opcode::FMul).IsFlop);
  EXPECT_FALSE(MD.opcodeInfo(Opcode::IAdd).IsFlop);
  EXPECT_FALSE(MD.opcodeInfo(Opcode::FLoad).IsFlop);
  EXPECT_FALSE(MD.opcodeInfo(Opcode::FConst).IsFlop);
}

TEST(ToyCell, Section2ExampleLatencies) {
  MachineDescription MD = MachineDescription::toyCell();
  // Read available next cycle; Add result exactly two cycles later.
  EXPECT_EQ(MD.opcodeInfo(Opcode::FLoad).Latency, 1u);
  EXPECT_EQ(MD.opcodeInfo(Opcode::FAdd).Latency, 2u);
  // Read, Add, Write each on their own resource so II=1 is possible.
  unsigned R = MD.opcodeInfo(Opcode::FLoad).Uses[0].ResId;
  unsigned A = MD.opcodeInfo(Opcode::FAdd).Uses[0].ResId;
  unsigned W = MD.opcodeInfo(Opcode::FStore).Uses[0].ResId;
  EXPECT_NE(R, A);
  EXPECT_NE(A, W);
  EXPECT_NE(R, W);
}

class ScaledWarp : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScaledWarp, ScalesArithmeticUnits) {
  unsigned Factor = GetParam();
  MachineDescription MD = MachineDescription::scaledWarpCell(Factor);
  unsigned FAddRes = MD.opcodeInfo(Opcode::FAdd).Uses[0].ResId;
  unsigned FMulRes = MD.opcodeInfo(Opcode::FMul).Uses[0].ResId;
  unsigned MemRes = MD.opcodeInfo(Opcode::FLoad).Uses[0].ResId;
  EXPECT_EQ(MD.resource(FAddRes).Units, Factor);
  EXPECT_EQ(MD.resource(FMulRes).Units, Factor);
  EXPECT_EQ(MD.resource(MemRes).Units, Factor);
  EXPECT_EQ(MD.name(), "warp-cell-x" + std::to_string(Factor));
}

INSTANTIATE_TEST_SUITE_P(Factors, ScaledWarp, ::testing::Values(1u, 2u, 4u));

TEST(MachineDescription, CustomMachine) {
  MachineDescription MD;
  unsigned R0 = MD.addResource("xu", 3);
  MD.setOpcodeInfo(Opcode::FAdd,
                   OpcodeInfo{4, {{R0, 0, 2}}, RegClass::Float, 2, true,
                              true});
  EXPECT_EQ(MD.numResources(), 1u);
  EXPECT_EQ(MD.resource(R0).Units, 3u);
  EXPECT_EQ(MD.opcodeInfo(Opcode::FAdd).Latency, 4u);
  EXPECT_EQ(MD.opcodeInfo(Opcode::FAdd).Uses[0].Units, 2u);
  EXPECT_FALSE(MD.isLegal(Opcode::FMul));
}
