//===- ModuloPropertyTests.cpp - randomized scheduler soundness ----------------===//
//
// Part of warp-swp.
//
// Property tests over random dependence graphs: whenever the modulo
// scheduler claims success, the schedule must satisfy every precedence
// constraint at the achieved II and never over-subscribe any folded
// resource row — checked here independently of the scheduler's own
// bookkeeping. The achieved II must also respect the lower bounds.
//
//===----------------------------------------------------------------------===//

#include "swp/Pipeliner/ModuloScheduler.h"

#include "swp/Sched/ScheduleDump.h"
#include "swp/Support/RNG.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

/// A random machine: 2-4 resources with 1-2 units each.
MachineDescription randomMachine(RNG &R) {
  MachineDescription MD;
  unsigned NumRes = static_cast<unsigned>(R.uniform(2, 4));
  for (unsigned I = 0; I != NumRes; ++I)
    MD.addResource("r" + std::to_string(I),
                   static_cast<unsigned>(R.uniform(1, 2)));
  MD.setRegisterFileSizes(32, 32);
  return MD;
}

/// A random legal dependence graph over ops on the random machine: units
/// use one random resource with latency 1-8; omega-0 edges only go
/// forward.
DepGraph randomGraph(RNG &R, MachineDescription &MD, unsigned N) {
  // Give each unit a distinct fake opcode footprint by building simple
  // operations whose OpcodeInfo we synthesize on Nop... instead, reuse
  // FAdd with per-unit reservations: simplest is to register FAdd once
  // and build units via makeReduced with explicit reservations.
  MD.setOpcodeInfo(Opcode::Nop,
                   OpcodeInfo{1, {}, RegClass::None, 0, false, true});
  std::vector<ScheduleUnit> Units;
  for (unsigned I = 0; I != N; ++I) {
    unsigned Res = static_cast<unsigned>(R.uniform(0, MD.numResources() - 1));
    std::vector<ResourceUse> Uses = {{Res, 0, 1}};
    if (R.chance(0.2)) // Occasionally a two-slot footprint.
      Uses.push_back({static_cast<unsigned>(
                          R.uniform(0, MD.numResources() - 1)),
                      static_cast<unsigned>(R.uniform(1, 2)), 1});
    Operation Op;
    Op.Opc = Opcode::Nop;
    int Len = 1;
    for (const ResourceUse &U : Uses)
      Len = std::max(Len, static_cast<int>(U.Cycle) + 1);
    Units.push_back(ScheduleUnit::makeReduced({UnitOp{Op, 0, {}}},
                                              std::move(Uses), Len, MD));
  }
  DepGraph G(std::move(Units));
  unsigned NumEdges = N + static_cast<unsigned>(R.uniform(0, 2 * N));
  for (unsigned E = 0; E != NumEdges; ++E) {
    unsigned A = static_cast<unsigned>(R.uniform(0, N - 1));
    unsigned B = static_cast<unsigned>(R.uniform(0, N - 1));
    if (R.chance(0.6) && A != B) {
      if (A > B)
        std::swap(A, B);
      G.addEdge({A, B, static_cast<int>(R.uniform(1, 8)), 0,
                 DepKind::Flow});
    } else {
      G.addEdge({A, B, static_cast<int>(R.uniform(-3, 9)),
                 static_cast<unsigned>(R.uniform(1, 3)), DepKind::Mem});
    }
  }
  return G;
}

/// Independent check of the folded resource rows.
bool moduloRowsFit(const DepGraph &G, const Schedule &Sched, unsigned II,
                   const MachineDescription &MD) {
  std::vector<std::vector<unsigned>> Usage(
      II, std::vector<unsigned>(MD.numResources(), 0));
  for (unsigned I = 0; I != G.numNodes(); ++I)
    for (const ResourceUse &Use : G.unit(I).reservation()) {
      unsigned Row =
          static_cast<unsigned>((Sched.startOf(I) + Use.Cycle) % II);
      Usage[Row][Use.ResId] += Use.Units;
      if (Usage[Row][Use.ResId] > MD.resource(Use.ResId).Units)
        return false;
    }
  return true;
}

} // namespace

class ModuloSchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(ModuloSchedulerProperty, SchedulesAreSoundAndBounded) {
  RNG R(50'000 + GetParam());
  MachineDescription MD = randomMachine(R);
  unsigned N = static_cast<unsigned>(R.uniform(3, 14));
  DepGraph G = randomGraph(R, MD, N);

  ModuloScheduleResult Res = moduloSchedule(G, MD);
  EXPECT_EQ(Res.MII, std::max(Res.ResMII, Res.RecMII));
  if (!Res.Success)
    return; // Failure is allowed; unsoundness is not.

  EXPECT_GE(Res.II, Res.MII);
  EXPECT_TRUE(Res.Sched.satisfiesPrecedence(G, static_cast<int>(Res.II)))
      << scheduleToString(G, Res.Sched, Res.II);
  EXPECT_TRUE(moduloRowsFit(G, Res.Sched, Res.II, MD))
      << moduloTableToString(G, Res.Sched, Res.II, MD);
  for (unsigned I = 0; I != G.numNodes(); ++I)
    EXPECT_GE(Res.Sched.startOf(I), 0) << "schedules are normalized";
}

TEST_P(ModuloSchedulerProperty, BinarySearchIsAlsoSound) {
  RNG R(90'000 + GetParam());
  MachineDescription MD = randomMachine(R);
  unsigned N = static_cast<unsigned>(R.uniform(3, 10));
  DepGraph G = randomGraph(R, MD, N);
  ModuloScheduleOptions Opts;
  Opts.BinarySearch = true;
  ModuloScheduleResult Res = moduloSchedule(G, MD, Opts);
  if (!Res.Success)
    return;
  EXPECT_TRUE(Res.Sched.satisfiesPrecedence(G, static_cast<int>(Res.II)));
  EXPECT_TRUE(moduloRowsFit(G, Res.Sched, Res.II, MD));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ModuloSchedulerProperty,
                         ::testing::Range(0, 60));

TEST(ScheduleDump, RendersChartAndTable) {
  RNG R(7);
  MachineDescription MD = randomMachine(R);
  DepGraph G = randomGraph(R, MD, 6);
  ModuloScheduleResult Res = moduloSchedule(G, MD);
  ASSERT_TRUE(Res.Success);
  std::string Chart = scheduleToString(G, Res.Sched, Res.II);
  EXPECT_NE(Chart.find("cycle"), std::string::npos);
  EXPECT_NE(Chart.find("#0:"), std::string::npos);
  std::string Table = moduloTableToString(G, Res.Sched, Res.II, MD);
  EXPECT_NE(Table.find("row"), std::string::npos);
  EXPECT_NE(Table.find("r0"), std::string::npos);
  // The table has II data rows plus the header.
  EXPECT_EQ(std::count(Table.begin(), Table.end(), '\n'),
            static_cast<long>(Res.II) + 1);
}
