//===- ArraySimTests.cpp - Warp-array co-simulation tests ---------------------===//
//
// Part of warp-swp.
//
//===----------------------------------------------------------------------===//

#include "swp/Sim/ArraySimulator.h"

#include "swp/Codegen/Compiler.h"
#include "swp/IR/IRBuilder.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

/// A compiled streaming cell: FOR i := 0 TO N-1: send(recv()*Scale + Bias).
struct StreamCell {
  std::unique_ptr<Program> Prog;
  VLIWProgram Code;
  bool Ok = false;

  StreamCell(int64_t N, float Scale, float Bias,
             const MachineDescription &MD,
             bool Pipelined = true) {
    Prog = std::make_unique<Program>();
    IRBuilder B(*Prog);
    VReg S = B.fconst(Scale);
    VReg Bi = B.fconst(Bias);
    ForStmt *L = B.beginForImm(0, N - 1);
    (void)L;
    B.send(0, B.fadd(B.fmul(B.recv(0), S), Bi));
    B.endFor();
    CompilerOptions Opts;
    Opts.EnablePipelining = Pipelined;
    CompileResult CR = compileProgram(*Prog, MD, Opts);
    EXPECT_TRUE(CR.Ok) << CR.Error;
    Ok = CR.Ok;
    Code = std::move(CR.Code);
  }
};

} // namespace

TEST(ArraySim, TwoCellPipelineComposes) {
  MachineDescription MD = MachineDescription::warpCell();
  StreamCell C0(16, 2.0f, 0.0f, MD); // x -> 2x
  StreamCell C1(16, 1.0f, 1.0f, MD); // y -> y+1
  ASSERT_TRUE(C0.Ok && C1.Ok);

  std::vector<float> Input;
  for (int I = 0; I != 16; ++I)
    Input.push_back(0.5f * I);

  std::vector<ArrayCell> Cells = {{&C0.Code, C0.Prog.get(), {}},
                                  {&C1.Code, C1.Prog.get(), {}}};
  ArrayRunResult R = simulateLinearArray(Cells, MD, Input);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.ArrayOutput.size(), 16u);
  for (int I = 0; I != 16; ++I)
    EXPECT_FLOAT_EQ(R.ArrayOutput[I], 2.0f * (0.5f * I) + 1.0f);
}

TEST(ArraySim, TenCellHomogeneousChainScalesThroughput) {
  // The paper's homogeneous model: ten identical cells; the pipeline's
  // aggregate rate approaches ten times one cell's.
  MachineDescription MD = MachineDescription::warpCell();
  constexpr int N = 256;
  std::vector<std::unique_ptr<StreamCell>> Cells;
  std::vector<ArrayCell> Specs;
  for (int I = 0; I != 10; ++I) {
    Cells.push_back(std::make_unique<StreamCell>(N, 1.0f, 1.0f, MD));
    ASSERT_TRUE(Cells.back()->Ok);
    Specs.push_back({&Cells.back()->Code, Cells.back()->Prog.get(), {}});
  }
  std::vector<float> Input(N, 0.0f);
  ArrayRunResult R = simulateLinearArray(Specs, MD, Input);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.ArrayOutput.size(), static_cast<size_t>(N));
  for (float V : R.ArrayOutput)
    EXPECT_FLOAT_EQ(V, 10.0f);

  // Aggregate rate close to 10x the single-cell rate.
  double CellRate = R.Cells[0].MFLOPS;
  EXPECT_GT(R.ArrayMFLOPS, 6.0 * CellRate);
  // Steady state without starvation: stalls happen only during pipeline
  // fill (downstream cells waiting for their first words).
  EXPECT_LT(R.StallCycles[9], R.Cycles / 2);
}

TEST(ArraySim, BoundedChannelBackpressure) {
  // Fast producer, slow consumer, a 4-word channel: the producer must
  // stall (backpressure) and the data must still arrive intact.
  MachineDescription MD = MachineDescription::warpCell();
  constexpr int N = 64;
  StreamCell Fast(N, 1.0f, 0.0f, MD);
  // Slow consumer: extra arithmetic between recv and send, unpipelined.
  std::unique_ptr<Program> SlowProg = std::make_unique<Program>();
  {
    IRBuilder B(*SlowProg);
    VReg K = B.fconst(1.0);
    ForStmt *L = B.beginForImm(0, N - 1);
    (void)L;
    VReg V = B.recv(0);
    for (int I = 0; I != 4; ++I)
      V = B.fadd(V, K); // A serial chain: ~28 cycles per word.
    B.send(0, V);
    B.endFor();
  }
  CompilerOptions Off;
  Off.EnablePipelining = false;
  CompileResult Slow = compileProgram(*SlowProg, MD, Off);
  ASSERT_TRUE(Slow.Ok) << Slow.Error;

  std::vector<float> Input;
  for (int I = 0; I != N; ++I)
    Input.push_back(static_cast<float>(I));
  std::vector<ArrayCell> Cells = {{&Fast.Code, Fast.Prog.get(), {}},
                                  {&Slow.Code, SlowProg.get(), {}}};
  ArrayOptions Opts;
  Opts.ChannelCapacity = 4;
  ArrayRunResult R = simulateLinearArray(Cells, MD, Input, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.StallCycles[0], 0u) << "producer must feel backpressure";
  ASSERT_EQ(R.ArrayOutput.size(), static_cast<size_t>(N));
  for (int I = 0; I != N; ++I)
    EXPECT_FLOAT_EQ(R.ArrayOutput[I], I + 4.0f);
}

TEST(ArraySim, StarvationIsAnError) {
  // Cell 0 sends 8 words; cell 1 wants 16: once cell 0 halts, the
  // channel closes and the over-read is a hard error, not a hang.
  MachineDescription MD = MachineDescription::warpCell();
  StreamCell Producer(8, 1.0f, 0.0f, MD);
  StreamCell Consumer(16, 1.0f, 0.0f, MD);
  ASSERT_TRUE(Producer.Ok && Consumer.Ok);
  std::vector<float> Input(8, 1.0f);
  std::vector<ArrayCell> Cells = {{&Producer.Code, Producer.Prog.get(), {}},
                                  {&Consumer.Code, Consumer.Prog.get(), {}}};
  ArrayRunResult R = simulateLinearArray(Cells, MD, Input);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("exhausted"), std::string::npos) << R.Error;
}

TEST(ArraySim, MatchesSingleCellSemantics) {
  // A cell's final state inside the array equals its standalone run on
  // the same stream (timing differs; values must not).
  MachineDescription MD = MachineDescription::warpCell();
  constexpr int N = 32;
  StreamCell C0(N, 3.0f, -1.0f, MD);
  ASSERT_TRUE(C0.Ok);
  std::vector<float> Input;
  for (int I = 0; I != N; ++I)
    Input.push_back(0.25f * I - 2.0f);

  ProgramInput Single;
  Single.InputQueue = Input;
  SimResult Alone = simulate(C0.Code, *C0.Prog, MD, Single);
  ASSERT_TRUE(Alone.State.Ok) << Alone.State.Error;

  std::vector<ArrayCell> Cells = {{&C0.Code, C0.Prog.get(), {}}};
  ArrayRunResult R = simulateLinearArray(Cells, MD, Input);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.ArrayOutput.size(), Alone.State.OutputQueue.size());
  for (size_t I = 0; I != R.ArrayOutput.size(); ++I)
    EXPECT_EQ(R.ArrayOutput[I], Alone.State.OutputQueue[I]);
  EXPECT_EQ(R.Cells[0].State.Flops, Alone.State.Flops);
}
