//===- ApiTests.cpp - public Session / TargetRegistry API tests ----------------===//
//
// Part of warp-swp.
//
// The versioned public API's contract tests (ctest labels "api" and
// "parallel"; the tsan preset re-runs them under the race detector):
//
//  - TargetRegistry: the three built-ins are valid; the machine JSON
//    round-trips exactly (identical fingerprintMachine, identical
//    canonical JSON, bit-identical schedules); invalid machines, name
//    collisions, and malformed files are rejected with descriptions.
//  - Session: compileNow and async submit are bit-identical to bare
//    compileProgram; a mixed-target batch (one target loaded from the
//    checked-in JSON file) matches per-target serial references with
//    per-target cache keys; priorities order the pending queue; cancel
//    trips cooperatively; option incoherence comes back as typed
//    OptionDiags; N concurrent sessions stay bit-identical to serial.
//  - The response envelope JSON is locked by a golden snapshot
//    (tests/goldens/session-response.json, SWP_UPDATE_GOLDENS=1 to
//    update).
//
//===----------------------------------------------------------------------===//

#include "swp/API/Session.h"
#include "swp/Codegen/VLIWProgram.h"
#include "swp/Service/ScheduleCache.h"
#include "swp/Support/Fingerprint.h"
#include "swp/Support/ThreadPool.h"
#include "swp/Verify/RandomLoopGen.h"
#include "swp/Workloads/Workloads.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

using namespace swp;

#ifndef SWP_GOLDEN_DIR
#error "SWP_GOLDEN_DIR must point at tests/goldens"
#endif
#ifndef SWP_SOURCE_DIR
#error "SWP_SOURCE_DIR must point at the source tree"
#endif

namespace {

/// Serial reference: bare compileProgram on a fresh instance of the
/// workload, rendered to text for bit-identity comparison.
std::string serialRef(const WorkloadSpec &Spec, const MachineDescription &MD,
                      const CompilerOptions &Opts = {}) {
  BuiltWorkload W = Spec.Make();
  CompileResult CR = compileProgram(*W.Prog, MD, Opts);
  EXPECT_TRUE(CR.Ok) << Spec.Name << ": " << CR.Error;
  return vliwProgramToString(CR.Code, MD);
}

std::string tempPath(const std::string &File) {
  return ::testing::TempDir() + File;
}

} // namespace

//===----------------------------------------------------------------------===//
// TargetRegistry
//===----------------------------------------------------------------------===//

TEST(TargetRegistry, BuiltinsRegisteredAndValid) {
  TargetRegistry Reg;
  TargetRegistry::registerBuiltins(Reg);
  std::vector<std::string> Names = Reg.names();
  ASSERT_EQ(Names.size(), 3u);
  EXPECT_EQ(Names[0], "toy-cell");
  EXPECT_EQ(Names[1], "warp-cell");
  EXPECT_EQ(Names[2], "warp-cell-x2");
  for (const std::string &N : Names) {
    const MachineDescription *MD = Reg.lookup(N);
    ASSERT_NE(MD, nullptr) << N;
    EXPECT_EQ(TargetRegistry::validateMachine(*MD), "") << N;
    EXPECT_EQ(MD->name(), N);
  }
  // The process-wide registry carries the same built-ins.
  for (const std::string &N : Names)
    EXPECT_NE(TargetRegistry::global().lookup(N), nullptr);
}

// The acceptance property of the JSON format: emit -> reload gives a
// machine with the identical fingerprint (so cache keys agree), the
// identical canonical JSON (so the form is a fixpoint), and bit-identical
// schedules for a nontrivial kernel.
TEST(TargetRegistry, JsonRoundTripIsExact) {
  TargetRegistry Reg;
  TargetRegistry::registerBuiltins(Reg);
  WorkloadSpec Spec = randomLoopSpec(7);
  for (const std::string &N : Reg.names()) {
    const MachineDescription &MD = *Reg.lookup(N);
    std::string Json = TargetRegistry::emitJson(MD);
    std::string Err;
    std::optional<MachineDescription> Re = TargetRegistry::parseJson(Json, Err);
    ASSERT_TRUE(Re.has_value()) << N << ": " << Err;
    EXPECT_TRUE(fingerprintMachine(MD) == fingerprintMachine(*Re))
        << N << ": reloaded machine fingerprint differs";
    EXPECT_EQ(TargetRegistry::emitJson(*Re), Json)
        << N << ": canonical JSON is not a fixpoint";
    EXPECT_EQ(serialRef(Spec, MD), serialRef(Spec, *Re))
        << N << ": reloaded machine schedules differently";
  }
}

TEST(TargetRegistry, RejectsInvalidMachinesAndCollisions) {
  // A default-constructed machine has no resources and no legal opcodes.
  MachineDescription Empty;
  EXPECT_NE(TargetRegistry::validateMachine(Empty), "");

  TargetRegistry Reg;
  TargetRegistry::registerBuiltins(Reg);
  EXPECT_NE(Reg.registerTarget("bad", Empty), "");
  EXPECT_EQ(Reg.lookup("bad"), nullptr);
  // Re-registering an existing name is refused (held pointers must stay
  // meaningful), and the original target is untouched.
  const MachineDescription *Before = Reg.lookup("warp-cell");
  EXPECT_NE(Reg.registerTarget("warp-cell", MachineDescription::warpCell()),
            "");
  EXPECT_EQ(Reg.lookup("warp-cell"), Before);
  EXPECT_NE(Reg.registerTarget("", MachineDescription::warpCell()), "");
  EXPECT_EQ(Reg.lookup("no-such-target"), nullptr);

  std::string Err;
  EXPECT_FALSE(TargetRegistry::parseJson("{", Err).has_value());
  EXPECT_NE(Err, "");
  EXPECT_FALSE(TargetRegistry::parseJson("[]", Err).has_value());
  EXPECT_FALSE(TargetRegistry::parseJson("{\"name\": \"x\"}", Err)
                   .has_value());
}

TEST(TargetRegistry, LoadFileRegistersUnderEmbeddedName) {
  // Rename a built-in in its JSON form and load it back from disk.
  std::string Json =
      TargetRegistry::emitJson(*TargetRegistry::global().lookup("toy-cell"));
  size_t At = Json.find("\"toy-cell\"");
  ASSERT_NE(At, std::string::npos);
  Json.replace(At, std::string("\"toy-cell\"").size(), "\"toy-fast\"");
  std::string Path = tempPath("swp_api_toy.json");
  {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good());
    Out << Json;
  }
  TargetRegistry Reg;
  std::string Name;
  ASSERT_EQ(Reg.loadFile(Path, &Name), "");
  EXPECT_EQ(Name, "toy-fast");
  ASSERT_NE(Reg.lookup("toy-fast"), nullptr);
  EXPECT_EQ(Reg.lookup("toy-fast")->name(), "toy-fast");

  EXPECT_NE(Reg.loadFile(tempPath("swp_api_missing.json")), "");
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

TEST(Session, CompileNowMatchesCompileProgram) {
  WorkloadSpec Spec = randomLoopSpec(11);
  std::string Ref = serialRef(Spec, MachineDescription::warpCell());

  Session Sess;
  ASSERT_EQ(Sess.configError(), "");
  EXPECT_NE(Sess.id(), 0u);
  BuiltWorkload W = Spec.Make();
  CompileResponse Resp = Sess.compileNow(*W.Prog, "warp-cell");
  ASSERT_TRUE(Resp.Ok) << Resp.Result.Error;
  EXPECT_EQ(Resp.Target, "warp-cell");
  EXPECT_EQ(Resp.SessionId, Sess.id());
  EXPECT_NE(Resp.RequestId, 0u);
  EXPECT_EQ(Resp.Result.Report.SessionId, Resp.SessionId);
  EXPECT_EQ(Resp.Result.Report.RequestId, Resp.RequestId);
  const MachineDescription &MD = *Sess.targets().lookup("warp-cell");
  EXPECT_EQ(vliwProgramToString(Resp.Result.Code, MD), Ref);
}

TEST(Session, SubmitAsyncMatchesSerial) {
  WorkloadSpec Spec = randomLoopSpec(12);
  std::string Ref = serialRef(Spec, MachineDescription::warpCell());

  Session Sess;
  CompileRequest Req;
  Req.Make = [&Spec] { return Spec.Make().Prog; };
  Req.Label = Spec.Name;
  CompileHandle H = Sess.submit(std::move(Req));
  ASSERT_TRUE(H.valid());
  const CompileResponse &Resp = H.get();
  ASSERT_TRUE(Resp.Ok) << Resp.Result.Error;
  EXPECT_EQ(Resp.RequestId, H.requestId());
  const MachineDescription &MD = *Sess.targets().lookup("warp-cell");
  EXPECT_EQ(vliwProgramToString(Resp.Result.Code, MD), Ref);
}

// The single-submitBatch acceptance check: one batch over two registered
// targets — one of them loaded from the checked-in JSON target file —
// matches per-target serial compileProgram references bit for bit, and
// every (kernel, target) pair really compiled (per-target cache keys and
// memo keys never collide across machines).
TEST(Session, MixedTargetBatchMatchesSerial) {
  TargetRegistry Reg;
  TargetRegistry::registerBuiltins(Reg);
  std::string Name;
  ASSERT_EQ(Reg.loadFile(std::string(SWP_SOURCE_DIR) +
                             "/examples/targets/warp-cell-fast.json",
                         &Name),
            "");
  ASSERT_EQ(Name, "warp-cell-fast");
  const std::vector<std::string> Targets = {"warp-cell", "warp-cell-fast"};

  std::vector<WorkloadSpec> Specs;
  for (uint64_t S = 20; S != 24; ++S)
    Specs.push_back(randomLoopSpec(S));

  std::vector<std::string> Ref;
  for (const std::string &T : Targets)
    for (const WorkloadSpec &Spec : Specs)
      Ref.push_back(serialRef(Spec, *Reg.lookup(T)));

  SessionConfig Cfg;
  Cfg.Registry = &Reg;
  Session Sess(Cfg);
  std::vector<CompileRequest> Batch;
  for (const std::string &T : Targets)
    for (const WorkloadSpec &Spec : Specs) {
      CompileRequest Req;
      Req.Make = [&Spec] { return Spec.Make().Prog; };
      Req.Target = T;
      Req.Label = Spec.Name;
      Batch.push_back(std::move(Req));
    }
  std::vector<CompileHandle> Handles = Sess.submitBatch(std::move(Batch));
  ASSERT_EQ(Handles.size(), Ref.size());
  bool AnyDiffer = false;
  for (size_t I = 0; I != Handles.size(); ++I) {
    const CompileResponse &Resp = Handles[I].get();
    ASSERT_TRUE(Resp.Ok) << Resp.Result.Error;
    const std::string &T = Targets[I / Specs.size()];
    EXPECT_EQ(Resp.Target, T);
    EXPECT_EQ(vliwProgramToString(Resp.Result.Code, *Reg.lookup(T)), Ref[I])
        << "batch result differs from serial reference";
  }
  // The two machines genuinely schedule differently for at least one
  // kernel, so the bit-identity above discriminates between targets.
  for (size_t I = 0; I != Specs.size(); ++I)
    AnyDiffer |= Ref[I] != Ref[Specs.size() + I];
  EXPECT_TRUE(AnyDiffer);
  // Every pair compiled: no cross-target memo hit.
  EXPECT_EQ(Sess.stats().Compiles, Ref.size());
}

namespace {

/// Occupies every worker of \p Pool until release() is called, so tests
/// can submit against a deliberately saturated pool.
class PoolBlocker {
public:
  PoolBlocker(ThreadPool &Pool, unsigned Workers) {
    for (unsigned I = 0; I != Workers; ++I)
      Pool.enqueue(Group, [this] {
        std::unique_lock<std::mutex> Lock(Mu);
        Cv.wait(Lock, [this] { return Released; });
      });
  }
  void release() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Released = true;
    }
    Cv.notify_all();
  }

private:
  TaskGroup Group;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Released = false;
};

} // namespace

TEST(Session, CancelBeforeRunReportsCancelled) {
  ThreadPool Pool(1);
  PoolBlocker Blocker(Pool, 1);
  SessionConfig Cfg;
  Cfg.Pool = &Pool;
  Session Sess(Cfg);
  WorkloadSpec Spec = randomLoopSpec(13);
  CompileRequest Req;
  Req.Make = [&Spec] { return Spec.Make().Prog; };
  CompileHandle H = Sess.submit(std::move(Req));
  H.cancel(); // Trips before the queued request can start.
  Blocker.release();
  const CompileResponse &Resp = H.get();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_TRUE(Resp.Cancelled);
  EXPECT_NE(Resp.Result.Error, "");
  // Cancelling a finished request is a no-op.
  H.cancel();
}

TEST(Session, PriorityOrdersPendingQueue) {
  ThreadPool Pool(1);
  PoolBlocker Blocker(Pool, 1);
  SessionConfig Cfg;
  Cfg.Pool = &Pool;
  Session Sess(Cfg);
  WorkloadSpec Spec = randomLoopSpec(14);

  // The factory runs when the compile actually starts, so the order the
  // factories fire is the order the queue released the requests.
  std::mutex OrderMu;
  std::vector<char> Order;
  auto MakeTagged = [&](char Tag) {
    return [&, Tag] {
      {
        std::lock_guard<std::mutex> Lock(OrderMu);
        Order.push_back(Tag);
      }
      return Spec.Make().Prog;
    };
  };
  CompileRequest A, B, C;
  A.Make = MakeTagged('a');
  A.Priority = 0;
  B.Make = MakeTagged('b');
  B.Priority = 5;
  C.Make = MakeTagged('c');
  C.Priority = 5;
  Sess.submit(std::move(A));
  Sess.submit(std::move(B));
  Sess.submit(std::move(C));
  Blocker.release();
  Sess.waitAll();
  // Higher priority first; FIFO among equals; the earlier-submitted
  // low-priority request runs last.
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(std::string(Order.begin(), Order.end()), "bca");
}

TEST(Session, UnknownTargetFailsFast) {
  Session Sess;
  CompileRequest Req;
  WorkloadSpec Spec = randomLoopSpec(15);
  Req.Make = [&Spec] { return Spec.Make().Prog; };
  Req.Target = "no-such-cell";
  CompileHandle H = Sess.submit(std::move(Req));
  const CompileResponse &Resp = H.get();
  EXPECT_FALSE(Resp.Ok);
  EXPECT_NE(Resp.Result.Error.find("no-such-cell"), std::string::npos);
  EXPECT_NE(Resp.Result.Error.find("warp-cell"), std::string::npos)
      << "the error should list the known targets";

  BuiltWorkload W = Spec.Make();
  CompileResponse Now = Sess.compileNow(*W.Prog, "no-such-cell");
  EXPECT_FALSE(Now.Ok);
}

TEST(Session, OptionRejectionsAreTyped) {
  Session Sess;
  WorkloadSpec Spec = randomLoopSpec(16);

  // A schedule cache with pipelining disabled is contradictory.
  ScheduleCache Cache;
  CompileRequest Req;
  Req.Make = [&Spec] { return Spec.Make().Prog; };
  CompilerOptions Bad;
  Bad.EnablePipelining = false;
  Bad.Cache = &Cache;
  Req.Opts = Bad;
  CompileHandle H = Sess.submit(std::move(Req));
  const CompileResponse &Resp = H.get();
  EXPECT_FALSE(Resp.Ok);
  ASSERT_FALSE(Resp.OptionErrors.empty());
  EXPECT_EQ(Resp.OptionErrors[0].Kind,
            OptionErrorKind::CacheWithoutPipelining);

  // Budget ceilings both per-request and inside Opts: DuplicateBudget.
  CompileRequest Req2;
  Req2.Make = [&Spec] { return Spec.Make().Prog; };
  Req2.Budget.MaxNodes = 100;
  CompilerOptions Dup;
  Dup.Budget.MaxNodes = 50;
  Req2.Opts = Dup;
  CompileHandle H2 = Sess.submit(std::move(Req2));
  const CompileResponse &Resp2 = H2.get();
  EXPECT_FALSE(Resp2.Ok);
  ASSERT_FALSE(Resp2.OptionErrors.empty());
  EXPECT_EQ(Resp2.OptionErrors[0].Kind, OptionErrorKind::DuplicateBudget);
}

TEST(Session, IncoherentConfigFailsEveryRequest) {
  // An injected service plus a session cache would silently ignore the
  // cache; the session refuses instead.
  CompileService Svc;
  ScheduleCache Cache;
  SessionConfig Cfg;
  Cfg.Service = &Svc;
  Cfg.Cache = &Cache;
  EXPECT_NE(Cfg.validate(), "");
  Session Sess(Cfg);
  EXPECT_NE(Sess.configError(), "");
  WorkloadSpec Spec = randomLoopSpec(17);
  BuiltWorkload W = Spec.Make();
  CompileResponse Resp = Sess.compileNow(*W.Prog);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Result.Error, Sess.configError());

  SessionConfig Cfg2;
  Cfg2.DefaultTarget = "no-such-cell";
  Session Sess2(Cfg2);
  EXPECT_NE(Sess2.configError(), "");
}

// N independent sessions hammering the shared pool concurrently must
// stay bit-identical to serial references (the tsan preset re-runs this
// under the race detector).
TEST(Session, ConcurrentSessionsBitIdentical) {
  const unsigned NumSessions = 4;
  std::vector<WorkloadSpec> Specs;
  for (uint64_t S = 30; S != 36; ++S)
    Specs.push_back(randomLoopSpec(S));
  MachineDescription MD = MachineDescription::warpCell();
  std::vector<std::string> Ref;
  for (const WorkloadSpec &Spec : Specs)
    Ref.push_back(serialRef(Spec, MD));

  std::vector<std::unique_ptr<Session>> Sessions;
  std::vector<std::vector<CompileHandle>> Handles(NumSessions);
  for (unsigned I = 0; I != NumSessions; ++I)
    Sessions.push_back(std::make_unique<Session>());
  // All batches in flight before any result is collected.
  for (unsigned I = 0; I != NumSessions; ++I) {
    std::vector<CompileRequest> Batch;
    for (const WorkloadSpec &Spec : Specs) {
      CompileRequest Req;
      Req.Make = [&Spec] { return Spec.Make().Prog; };
      Req.Label = Spec.Name;
      Batch.push_back(std::move(Req));
    }
    Handles[I] = Sessions[I]->submitBatch(std::move(Batch));
  }
  for (unsigned I = 0; I != NumSessions; ++I)
    for (size_t J = 0; J != Handles[I].size(); ++J) {
      const CompileResponse &Resp = Handles[I][J].get();
      ASSERT_TRUE(Resp.Ok) << Resp.Result.Error;
      EXPECT_EQ(Resp.SessionId, Sessions[I]->id());
      EXPECT_EQ(vliwProgramToString(Resp.Result.Code, MD), Ref[J]);
    }
}

//===----------------------------------------------------------------------===//
// Response envelope golden
//===----------------------------------------------------------------------===//

namespace {

/// Scrubs the nondeterministic fields of a response envelope: timing
/// ("total_seconds") and the process-global session id. The request id
/// is deterministic (first request of a fresh session) and stays.
std::string canonicalizeEnvelope(std::string Json) {
  for (const std::string &Key :
       {std::string("\"total_seconds\": "), std::string("\"session_id\": ")}) {
    size_t At = 0;
    while ((At = Json.find(Key, At)) != std::string::npos) {
      size_t ValBegin = At + Key.size();
      size_t ValEnd = ValBegin;
      while (ValEnd < Json.size() && Json[ValEnd] != ',' &&
             Json[ValEnd] != '}' && Json[ValEnd] != '\n')
        ++ValEnd;
      Json.replace(ValBegin, ValEnd - ValBegin, "0");
      At = ValBegin;
    }
  }
  return Json;
}

bool updateRequested() {
  const char *E = std::getenv("SWP_UPDATE_GOLDENS");
  return E && *E && std::string(E) != "0";
}

} // namespace

// Locks the versioned response envelope shape (and, transitively, the
// embedded CompileReport) against tests/goldens/session-response.json.
// Adding, removing, or renaming an envelope key is an API change that
// must be reviewed alongside an intentional golden update and a
// Version.h bump when it breaks consumers.
TEST(Session, ResponseJsonGolden) {
  WorkloadSpec Spec = randomLoopSpec(42);
  Session Sess;
  BuiltWorkload W = Spec.Make();
  CompileResponse Resp = Sess.compileNow(*W.Prog, "warp-cell");
  ASSERT_TRUE(Resp.Ok) << Resp.Result.Error;
  EXPECT_NE(Resp.toJson().find("\"api_version\": \"" +
                               std::string(api::versionString()) + "\""),
            std::string::npos);
  std::string Json = canonicalizeEnvelope(Resp.toJson());

  std::string Path = std::string(SWP_GOLDEN_DIR) + "/session-response.json";
  if (updateRequested()) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Json;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good())
      << "missing golden " << Path
      << " (run with SWP_UPDATE_GOLDENS=1 to create it)";
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Json)
      << "session response envelope drifted from its golden. If the "
         "change is intentional, rerun with SWP_UPDATE_GOLDENS=1, review "
         "the diff, and bump swp/API/Version.h when it breaks consumers.";
}
