//===- MetricsServerTests.cpp - loopback scrape endpoint tests ------------===//
//
// Part of warp-swp.
//
// The scrape-endpoint suite (ctest label "metrics"; re-run by the tsan
// preset): ephemeral-port binding, response routing for all endpoints,
// byte-identity of a scrape against toPrometheusText() of the same
// registry, malformed-request and header-timeout handling, the bounded
// connection queue (503 past MaxPending), and a scrape-while-recording
// race test that hammers the registry from writer threads while a
// scraper loops GETs — the case TSan checks for data races.
//
// All clients here are raw loopback sockets so the tests exercise the
// server's actual HTTP framing, not a library's idea of it.
//
//===----------------------------------------------------------------------===//

#include "swp/Metrics/Metrics.h"
#include "swp/Metrics/MetricsServer.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace swp;
using namespace swp::metrics;

namespace {

/// Connects to 127.0.0.1:Port with a 10s receive timeout so a server
/// bug can never hang the test binary. Returns -1 on failure.
int connectTo(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  timeval TV{10, 0};
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Reads until the peer closes (Connection: close framing).
std::string readAll(int Fd) {
  std::string Out;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  return Out;
}

/// One full raw exchange: send Raw verbatim, read the whole response.
std::string rawRequest(uint16_t Port, const std::string &Raw) {
  int Fd = connectTo(Port);
  if (Fd < 0)
    return "";
  ::send(Fd, Raw.data(), Raw.size(), MSG_NOSIGNAL);
  std::string Resp = readAll(Fd);
  ::close(Fd);
  return Resp;
}

/// Sends Raw, half-closes the write side (so the server sees EOF rather
/// than waiting out its read timeout), then reads the response.
std::string rawRequestEof(uint16_t Port, const std::string &Raw) {
  int Fd = connectTo(Port);
  if (Fd < 0)
    return "";
  ::send(Fd, Raw.data(), Raw.size(), MSG_NOSIGNAL);
  ::shutdown(Fd, SHUT_WR);
  std::string Resp = readAll(Fd);
  ::close(Fd);
  return Resp;
}

std::string httpGet(uint16_t Port, const std::string &Path) {
  return rawRequest(Port, "GET " + Path + " HTTP/1.0\r\n\r\n");
}

/// The response body: everything after the header terminator.
std::string bodyOf(const std::string &Resp) {
  size_t P = Resp.find("\r\n\r\n");
  return P == std::string::npos ? std::string() : Resp.substr(P + 4);
}

std::string statusOf(const std::string &Resp) {
  size_t P = Resp.find("\r\n");
  return P == std::string::npos ? Resp : Resp.substr(0, P);
}

TEST(MetricsServer, EphemeralBindServesAllEndpoints) {
  MetricsRegistry Reg;
  Reg.setEnabled(true);
  Reg.counter("swp_test_total", "", "help").inc(5);

  MetricsServer::Config C;
  C.Port = 0;
  C.Registry = &Reg;
  MetricsServer Server(C);
  ASSERT_TRUE(Server.ok()) << Server.error();
  ASSERT_NE(Server.port(), 0u);

  std::string Health = httpGet(Server.port(), "/healthz");
  EXPECT_EQ(statusOf(Health), "HTTP/1.0 200 OK");
  EXPECT_EQ(bodyOf(Health), "ok\n");

  std::string Prom = httpGet(Server.port(), "/metrics");
  EXPECT_EQ(statusOf(Prom), "HTTP/1.0 200 OK");
  EXPECT_NE(Prom.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(bodyOf(Prom).find("swp_test_total 5"), std::string::npos);
  // The server counts its own traffic on the registry it serves, and the
  // counter is bumped before the snapshot: a scrape observes itself.
  EXPECT_NE(
      bodyOf(Prom).find("swp_metrics_http_requests_total{path=\"metrics\"} 1"),
      std::string::npos);

  std::string Json = httpGet(Server.port(), "/metrics.json");
  EXPECT_EQ(statusOf(Json), "HTTP/1.0 200 OK");
  std::string JB = bodyOf(Json);
  ASSERT_FALSE(JB.empty());
  EXPECT_EQ(JB.front(), '{');
  EXPECT_EQ(JB.back(), '\n'); // Single JSON line plus trailing newline.
  EXPECT_EQ(JB.find('\n'), JB.size() - 1);
  EXPECT_NE(JB.find("\"swp_test_total\":5"), std::string::npos);

  EXPECT_EQ(statusOf(httpGet(Server.port(), "/nope")),
            "HTTP/1.0 404 Not Found");
  // Query strings are stripped before routing.
  EXPECT_EQ(statusOf(httpGet(Server.port(), "/healthz?x=1")),
            "HTTP/1.0 200 OK");
  EXPECT_EQ(Server.requestsServed(), 5u);

  // Two ephemeral servers never collide.
  MetricsServer Other(C);
  ASSERT_TRUE(Other.ok()) << Other.error();
  EXPECT_NE(Other.port(), Server.port());
}

// A scrape must be byte-identical to toPrometheusText() of the registry
// it serves: same series, same order, same rendering. The server's own
// request counter ticks before the snapshot, so the post-scrape local
// snapshot sees exactly what the scrape saw.
TEST(MetricsServer, ScrapeIsByteIdenticalToLocalSnapshot) {
  MetricsRegistry Reg;
  Reg.setEnabled(true);
  Reg.counter("swp_test_total", "", "Requests").inc(42);
  Reg.counter("swp_test_total", "priority=\"high\"", "Requests").inc(7);
  Reg.gauge("swp_test_depth", "", "Depth").add(3);
  Histogram H = Reg.histogram("swp_test_us", "", "Latency");
  for (uint64_t V : {0ull, 1ull, 100ull, 5000ull})
    H.record(V);

  MetricsServer::Config C;
  C.Registry = &Reg;
  MetricsServer Server(C);
  ASSERT_TRUE(Server.ok()) << Server.error();

  std::string Scraped = bodyOf(httpGet(Server.port(), "/metrics"));
  ASSERT_FALSE(Scraped.empty());
  EXPECT_EQ(Scraped, Reg.snapshot().toPrometheusText());

  std::string ScrapedJson = bodyOf(httpGet(Server.port(), "/metrics.json"));
  EXPECT_EQ(ScrapedJson, Reg.snapshot().toJson() + "\n");
}

TEST(MetricsServer, MalformedRequestsGet400) {
  MetricsRegistry Reg;
  Reg.setEnabled(true);
  MetricsServer::Config C;
  C.Registry = &Reg;
  MetricsServer Server(C);
  ASSERT_TRUE(Server.ok()) << Server.error();

  // Not a GET.
  EXPECT_EQ(statusOf(rawRequest(Server.port(), "POST /metrics HTTP/1.0\r\n\r\n")),
            "HTTP/1.0 400 Bad Request");
  // Token soup.
  EXPECT_EQ(statusOf(rawRequest(Server.port(), "BOGUS\r\n\r\n")),
            "HTTP/1.0 400 Bad Request");
  // A peer that closes mid-headers is a bad request, not a timeout.
  EXPECT_EQ(statusOf(rawRequestEof(Server.port(), "GET /metr")),
            "HTTP/1.0 400 Bad Request");
  // The server stays healthy after abuse.
  EXPECT_EQ(statusOf(httpGet(Server.port(), "/healthz")), "HTTP/1.0 200 OK");
}

TEST(MetricsServer, SilentClientGets408AfterTimeout) {
  MetricsRegistry Reg;
  Reg.setEnabled(true);
  MetricsServer::Config C;
  C.Registry = &Reg;
  C.TimeoutMs = 200;
  MetricsServer Server(C);
  ASSERT_TRUE(Server.ok()) << Server.error();

  int Fd = connectTo(Server.port());
  ASSERT_GE(Fd, 0);
  // Partial headers, then silence: the handler must give up after
  // TimeoutMs and answer 408 instead of wedging forever.
  const char Partial[] = "GET /healthz HT";
  ::send(Fd, Partial, sizeof(Partial) - 1, MSG_NOSIGNAL);
  std::string Resp = readAll(Fd);
  ::close(Fd);
  EXPECT_EQ(statusOf(Resp), "HTTP/1.0 408 Request Timeout");
  EXPECT_EQ(statusOf(httpGet(Server.port(), "/healthz")), "HTTP/1.0 200 OK");
}

// The connection queue is bounded: with the single handler wedged on a
// stalled client, MaxPending connections queue and everything past the
// cap is answered 503 immediately. Once the stall times out the queued
// connections are served normally — nothing is silently dropped.
TEST(MetricsServer, ConnectionCapAnswers503PastMaxPending) {
  MetricsRegistry Reg;
  Reg.setEnabled(true);
  MetricsServer::Config C;
  C.Registry = &Reg;
  C.MaxConnections = 1;
  C.MaxPending = 2;
  C.TimeoutMs = 700;
  MetricsServer Server(C);
  ASSERT_TRUE(Server.ok()) << Server.error();

  // Wedge the only handler: partial request, then silence.
  int Stall = connectTo(Server.port());
  ASSERT_GE(Stall, 0);
  ::send(Stall, "GET /h", 6, MSG_NOSIGNAL);
  // Give the handler time to pop the stalled connection off the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Flood: the first MaxPending queue up, the rest must get 503 now.
  constexpr int Flood = 6;
  int Fds[Flood];
  for (int I = 0; I != Flood; ++I) {
    Fds[I] = connectTo(Server.port());
    ASSERT_GE(Fds[I], 0) << "conn " << I;
    const char Req[] = "GET /healthz HTTP/1.0\r\n\r\n";
    ::send(Fds[I], Req, sizeof(Req) - 1, MSG_NOSIGNAL);
    // Serialize connect->accept so the queue-depth check is deterministic.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  int Ok200 = 0, Busy503 = 0;
  for (int I = 0; I != Flood; ++I) {
    std::string Resp = readAll(Fds[I]);
    ::close(Fds[I]);
    std::string Status = statusOf(Resp);
    if (Status == "HTTP/1.0 200 OK")
      ++Ok200;
    else if (Status == "HTTP/1.0 503 Service Unavailable")
      ++Busy503;
    else
      ADD_FAILURE() << "conn " << I << ": unexpected response " << Status;
  }
  EXPECT_EQ(Ok200, 2) << "queued connections must be served after the stall";
  EXPECT_EQ(Busy503, Flood - 2) << "past-cap connections must 503";

  EXPECT_EQ(statusOf(readAll(Stall)), "HTTP/1.0 408 Request Timeout");
  ::close(Stall);
}

// The race test the tsan preset exists for: writer threads hammer
// counters, labeled families, and histograms while a scraper loops live
// GETs against the same registry. Correctness here is "every scrape is
// a well-formed 200 and TSan stays quiet"; exact values are checked
// after the writers join.
TEST(MetricsServer, ScrapeWhileRecordingIsRaceFree) {
  MetricsRegistry Reg;
  Reg.setEnabled(true);
  MetricsServer::Config C;
  C.Registry = &Reg;
  MetricsServer Server(C);
  ASSERT_TRUE(Server.ok()) << Server.error();

  CounterFamily Fam(Reg, "swp_test_by_target_total", "per-target", "target");
  Counter Plain = Reg.counter("swp_test_total");
  Histogram H = Reg.histogram("swp_test_us");

  constexpr unsigned Writers = 4;
  constexpr uint64_t PerThread = 5000;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Writers; ++T)
    Ts.emplace_back([&, T] {
      while (!Go.load())
        std::this_thread::yield();
      const std::string Target = "t" + std::to_string(T % 3);
      for (uint64_t I = 0; I != PerThread; ++I) {
        Plain.inc();
        H.record(I % 512);
        // First use registers through the family's lock; later uses hit
        // the cached handle — both paths race against live snapshots.
        Fam.with(Target).inc();
      }
    });

  Go.store(true);
  unsigned Scrapes = 0;
  for (int I = 0; I != 25; ++I) {
    std::string Resp = httpGet(Server.port(), I % 2 ? "/metrics"
                                                    : "/metrics.json");
    ASSERT_EQ(statusOf(Resp), "HTTP/1.0 200 OK") << "scrape " << I;
    ASSERT_FALSE(bodyOf(Resp).empty());
    ++Scrapes;
  }
  for (std::thread &T : Ts)
    T.join();

  EXPECT_EQ(Server.requestsServed(), Scrapes);
  MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.counter("swp_test_total")->Value, Writers * PerThread);
  EXPECT_EQ(S.counterTotal("swp_test_by_target_total"), Writers * PerThread);
  EXPECT_EQ(S.histogram("swp_test_us")->Count, Writers * PerThread);
}

TEST(MetricsServer, StopIsIdempotentAndRefusesNewWork) {
  MetricsRegistry Reg;
  Reg.setEnabled(true);
  MetricsServer::Config C;
  C.Registry = &Reg;
  MetricsServer Server(C);
  ASSERT_TRUE(Server.ok()) << Server.error();
  uint16_t Port = Server.port();
  EXPECT_EQ(statusOf(httpGet(Port, "/healthz")), "HTTP/1.0 200 OK");

  Server.stop();
  Server.stop(); // Idempotent.
  // The listen socket is gone: connects now fail outright.
  EXPECT_LT(connectTo(Port), 0);
}

} // namespace
