//===- IRTests.cpp - Unit tests for swp_ir -----------------------------------===//
//
// Part of warp-swp.
//
//===----------------------------------------------------------------------===//

#include "swp/IR/Expansion.h"
#include "swp/IR/IRBuilder.h"
#include "swp/IR/OpTraits.h"
#include "swp/IR/Printer.h"
#include "swp/IR/Verifier.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace swp;

namespace {

/// a[i] := a[i] + 1.0 over i in [0, 9].
struct VectorAddFixture {
  Program P;
  unsigned A;
  ForStmt *Loop = nullptr;

  VectorAddFixture() {
    IRBuilder B(P);
    A = P.createArray("a", RegClass::Float, 10);
    VReg K = B.fconst(1.0);
    Loop = B.beginForImm(0, 9);
    VReg X = B.fload(A, B.ix(Loop));
    B.fstore(A, B.ix(Loop), B.fadd(X, K));
    B.endFor();
  }
};

} // namespace

TEST(AffineExpr, TermArithmetic) {
  AffineExpr E;
  E.addTerm(0, 2);
  E.addTerm(1, 3);
  E.addTerm(0, -2); // cancels loop 0
  EXPECT_EQ(E.coefOf(0), 0);
  EXPECT_EQ(E.coefOf(1), 3);
  EXPECT_EQ(E.Terms.size(), 1u);
  E.addTerm(2, 0); // no-op
  EXPECT_EQ(E.Terms.size(), 1u);
}

TEST(AffineExpr, StaticEquality) {
  AffineExpr A, B;
  A.addTerm(0, 2);
  A.Const = 3;
  B.addTerm(0, 2);
  B.Const = 3;
  EXPECT_TRUE(A.equalsStatically(B));
  B.Const = 4;
  EXPECT_FALSE(A.equalsStatically(B));
  B.Const = 3;
  B.Addend = VReg(5);
  EXPECT_FALSE(A.equalsStatically(B));
}

TEST(IRBuilder, BuildsVectorAdd) {
  VectorAddFixture F;
  ASSERT_EQ(F.P.Body.size(), 2u); // fconst + for
  auto *For = dyn_cast<ForStmt>(F.P.Body[1].get());
  ASSERT_NE(For, nullptr);
  EXPECT_EQ(For->staticTripCount(), 10);
  EXPECT_EQ(For->Body.size(), 3u); // load, add, store
  EXPECT_EQ(countOps(F.P.Body), 4u);
}

TEST(IRBuilder, RuntimeBoundTripCountUnknown) {
  Program P;
  IRBuilder B(P);
  VReg N = P.createVReg(RegClass::Int, "n", /*LiveIn=*/true);
  ForStmt *L = B.beginForReg(0, N);
  B.endFor();
  EXPECT_FALSE(L->staticTripCount().has_value());
}

TEST(IRBuilder, NestedControl) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 100);
  ForStmt *I = B.beginForImm(0, 9);
  ForStmt *J = B.beginForImm(0, 9);
  VReg X = B.fload(A, B.ix(I, 10) + B.ix(J));
  (void)X;
  B.endFor();
  B.endFor();
  DiagnosticEngine DE;
  EXPECT_TRUE(verifyProgram(P, DE)) << DE.str();
}

TEST(Program, CloneIsDeep) {
  VectorAddFixture F;
  StmtList Copy = cloneStmts(F.P.Body);
  EXPECT_EQ(countOps(Copy), countOps(F.P.Body));
  // Mutating the clone must not affect the original.
  auto *For = cast<ForStmt>(Copy[1].get());
  For->Body.clear();
  EXPECT_EQ(countOps(F.P.Body), 4u);
}

TEST(Printer, RendersOperations) {
  VectorAddFixture F;
  std::ostringstream OS;
  printProgram(F.P, OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("array a: float[10]"), std::string::npos);
  EXPECT_NE(Out.find("for i0 := 0 to 9 {"), std::string::npos);
  EXPECT_NE(Out.find("fload a[i0]"), std::string::npos);
  EXPECT_NE(Out.find("fstore a[i0]"), std::string::npos);
  EXPECT_NE(Out.find("fadd"), std::string::npos);
}

TEST(OpTraits, SignatureConsistency) {
  // Every opcode has a coherent signature: operand classes defined for all
  // indices, and stores/sends define nothing.
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    Opcode Opc = static_cast<Opcode>(I);
    unsigned N = numValueOperands(Opc);
    for (unsigned J = 0; J != N; ++J)
      EXPECT_NE(operandClassOf(Opc, J), RegClass::None)
          << opcodeName(Opc) << " operand " << J;
  }
  EXPECT_EQ(resultClassOf(Opcode::FStore), RegClass::None);
  EXPECT_EQ(resultClassOf(Opcode::Send), RegClass::None);
  EXPECT_EQ(resultClassOf(Opcode::FCmpLT), RegClass::Int);
  EXPECT_EQ(resultClassOf(Opcode::FSel), RegClass::Float);
  EXPECT_TRUE(isFlopOpcode(Opcode::FAdd));
  EXPECT_FALSE(isFlopOpcode(Opcode::FLoad));
}

TEST(Verifier, AcceptsWellFormed) {
  VectorAddFixture F;
  DiagnosticEngine DE;
  EXPECT_TRUE(verifyProgram(F.P, DE)) << DE.str();
}

TEST(Verifier, RejectsUseBeforeDef) {
  Program P;
  IRBuilder B(P);
  VReg Ghost = P.createVReg(RegClass::Float); // never defined, not live-in
  B.fadd(Ghost, Ghost);
  DiagnosticEngine DE;
  EXPECT_FALSE(verifyProgram(P, DE));
  EXPECT_NE(DE.str().find("read before any definition"), std::string::npos);
}

TEST(Verifier, AcceptsLiveIn) {
  Program P;
  IRBuilder B(P);
  VReg In = P.createVReg(RegClass::Float, "x", /*LiveIn=*/true);
  B.fadd(In, In);
  DiagnosticEngine DE;
  EXPECT_TRUE(verifyProgram(P, DE)) << DE.str();
}

TEST(Verifier, RejectsClassMismatch) {
  Program P;
  IRBuilder B(P);
  VReg I = B.iconst(1);
  Operation Op;
  Op.Opc = Opcode::FAdd;
  Op.Operands = {I, I}; // ints into a float op
  Op.Def = P.createVReg(RegClass::Float);
  B.emit(std::move(Op));
  DiagnosticEngine DE;
  EXPECT_FALSE(verifyProgram(P, DE));
  EXPECT_NE(DE.str().find("wrong register class"), std::string::npos);
}

TEST(Verifier, RejectsOutOfScopeSubscript) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 8);
  ForStmt *L = B.beginForImm(0, 7);
  B.endFor();
  // Subscript over a loop that is no longer open.
  B.fload(A, B.ix(L));
  DiagnosticEngine DE;
  EXPECT_FALSE(verifyProgram(P, DE));
  EXPECT_NE(DE.str().find("does not enclose"), std::string::npos);
}

TEST(Verifier, RejectsConstantOutOfBounds) {
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 8);
  B.fload(A, B.cx(8));
  DiagnosticEngine DE;
  EXPECT_FALSE(verifyProgram(P, DE));
  EXPECT_NE(DE.str().find("out of bounds"), std::string::npos);
}

TEST(Verifier, BranchLocalDefsDoNotEscape) {
  Program P;
  IRBuilder B(P);
  VReg C = B.iconst(1);
  VReg X = P.createVReg(RegClass::Float);
  B.beginIf(C);
  B.assignUn(X, Opcode::FMov, B.fconst(1.0));
  B.endIf();
  B.fadd(X, X); // X defined only in the THEN branch
  DiagnosticEngine DE;
  EXPECT_FALSE(verifyProgram(P, DE));
}

TEST(Verifier, BothBranchDefsEscape) {
  Program P;
  IRBuilder B(P);
  VReg C = B.iconst(1);
  VReg X = P.createVReg(RegClass::Float);
  B.beginIf(C);
  B.assignUn(X, Opcode::FMov, B.fconst(1.0));
  B.beginElse();
  B.assignUn(X, Opcode::FMov, B.fconst(2.0));
  B.endIf();
  B.fadd(X, X);
  DiagnosticEngine DE;
  EXPECT_TRUE(verifyProgram(P, DE)) << DE.str();
}

TEST(Expansion, InvIsSevenFlops) {
  Program P;
  IRBuilder B(P);
  VReg X = P.createVReg(RegClass::Float, "x", /*LiveIn=*/true);
  B.finv(X);
  ExpansionStats Stats = expandLibraryOps(P);
  EXPECT_EQ(Stats.NumInv, 1u);
  unsigned Flops = 0;
  forEachStmt(P.Body, [&](const Stmt &S) {
    if (const auto *Op = dyn_cast<OpStmt>(&S))
      if (isFlopOpcode(Op->Op.Opc))
        ++Flops;
  });
  EXPECT_EQ(Flops, 7u) << "paper 4.2: INVERSE expands to 7 fp operations";
  DiagnosticEngine DE;
  EXPECT_TRUE(verifyProgram(P, DE)) << DE.str();
}

TEST(Expansion, SqrtIsNineteenFlops) {
  Program P;
  IRBuilder B(P);
  VReg X = P.createVReg(RegClass::Float, "x", /*LiveIn=*/true);
  B.fsqrt(X);
  ExpansionStats Stats = expandLibraryOps(P);
  EXPECT_EQ(Stats.NumSqrt, 1u);
  unsigned Flops = 0;
  forEachStmt(P.Body, [&](const Stmt &S) {
    if (const auto *Op = dyn_cast<OpStmt>(&S))
      if (isFlopOpcode(Op->Op.Opc))
        ++Flops;
  });
  EXPECT_EQ(Flops, 19u) << "paper 4.2: SQRT expands to 19 fp operations";
}

TEST(Expansion, ExpIsConditionalHeavy) {
  Program P;
  IRBuilder B(P);
  VReg X = P.createVReg(RegClass::Float, "x", /*LiveIn=*/true);
  B.fexp(X);
  ExpansionStats Stats = expandLibraryOps(P);
  EXPECT_EQ(Stats.NumExp, 1u);
  unsigned Conds = 0;
  forEachStmt(P.Body, [&](const Stmt &S) {
    if (isa<IfStmt>(&S))
      ++Conds;
  });
  EXPECT_GE(Conds, 8u) << "EXP must be branch-heavy like the paper's library";
  DiagnosticEngine DE;
  EXPECT_TRUE(verifyProgram(P, DE)) << DE.str();
}

TEST(Expansion, LeavesNoPseudos) {
  Program P;
  IRBuilder B(P);
  VReg X = P.createVReg(RegClass::Float, "x", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 3);
  (void)L;
  B.fexp(B.fsqrt(B.finv(X)));
  B.endFor();
  expandLibraryOps(P);
  forEachStmt(P.Body, [&](const Stmt &S) {
    if (const auto *Op = dyn_cast<OpStmt>(&S))
      EXPECT_FALSE(isLibraryPseudo(Op->Op.Opc));
  });
}
