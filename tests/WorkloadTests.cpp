//===- WorkloadTests.cpp - workload correctness over the full stack -----------===//
//
// Part of warp-swp.
//
// Every evaluation workload (Livermore kernels, Table 4-1 applications,
// a sample of the synthetic population) must compile, simulate, and match
// the scalar interpreter bit-for-bit, pipelined and unpipelined.
//
//===----------------------------------------------------------------------===//

#include "swp/Workloads/Workloads.h"

#include "swp/Codegen/Compiler.h"
#include "swp/IR/Verifier.h"
#include "swp/Interp/Interpreter.h"
#include "swp/Sim/Simulator.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

struct Case {
  std::string Name;
  WorkloadSpec Spec;
  bool Pipelined;
};

std::vector<Case> allCases() {
  std::vector<Case> Cases;
  auto Add = [&](const WorkloadSpec &S) {
    Cases.push_back({S.Name + "_swp", S, true});
    Cases.push_back({S.Name + "_base", S, false});
  };
  for (const WorkloadSpec &S : livermoreKernels())
    Add(S);
  for (const WorkloadSpec &S : userPrograms())
    Add(S);
  // A sample of the population; the figure benches run all 72.
  auto Pop = syntheticPopulation(72, /*Seed=*/1988);
  for (size_t I = 0; I < Pop.size(); I += 7)
    Add(Pop[I]);
  return Cases;
}

class WorkloadEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadEquivalence, SimMatchesInterp) {
  static const std::vector<Case> Cases = allCases();
  const Case &C = Cases[GetParam()];

  BuiltWorkload W = C.Spec.Make();
  DiagnosticEngine DE;
  ASSERT_TRUE(verifyProgram(*W.Prog, DE)) << C.Name << "\n" << DE.str();

  MachineDescription MD = MachineDescription::warpCell();
  CompilerOptions Opts;
  Opts.EnablePipelining = C.Pipelined;
  CompileResult CR = compileProgram(*W.Prog, MD, Opts);
  ASSERT_TRUE(CR.Ok) << C.Name << ": " << CR.Error;

  ProgramState Golden = interpret(*W.Prog, W.Input);
  ASSERT_TRUE(Golden.Ok) << C.Name << ": " << Golden.Error;

  SimResult Sim = simulate(CR.Code, *W.Prog, MD, W.Input);
  ASSERT_TRUE(Sim.State.Ok) << C.Name << ": " << Sim.State.Error;
  EXPECT_EQ(compareStates(*W.Prog, Golden, Sim.State), "") << C.Name;
  EXPECT_EQ(Golden.Flops, Sim.State.Flops) << C.Name;
  EXPECT_GT(Sim.Cycles, 0u);
}

static std::string caseName(const ::testing::TestParamInfo<size_t> &Info) {
  static const std::vector<Case> Cases = allCases();
  std::string Name = Cases[Info.param].Name;
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadEquivalence,
    ::testing::Range<size_t>(0, allCases().size()), caseName);

TEST(Workloads, PopulationIsDeterministic) {
  auto A = syntheticPopulation(8, 42);
  auto B = syntheticPopulation(8, 42);
  for (size_t I = 0; I != A.size(); ++I) {
    BuiltWorkload WA = A[I].Make();
    BuiltWorkload WB = B[I].Make();
    ProgramState SA = interpret(*WA.Prog, WA.Input);
    ProgramState SB = interpret(*WB.Prog, WB.Input);
    ASSERT_TRUE(SA.Ok && SB.Ok);
    EXPECT_EQ(compareStates(*WA.Prog, SA, SB), "") << A[I].Name;
    EXPECT_EQ(SA.DynOps, SB.DynOps);
  }
}

TEST(Workloads, PopulationMixMatchesPaper) {
  auto Pop = syntheticPopulation(72, 1988);
  ASSERT_EQ(Pop.size(), 72u);
  unsigned WithCond = 0;
  for (const WorkloadSpec &S : Pop)
    if (S.Name.find("-cond") != std::string::npos)
      ++WithCond;
  EXPECT_EQ(WithCond, 42u) << "paper: 42 of the 72 programs contain "
                              "conditionals";
}

TEST(Workloads, LivermoreCoverage) {
  const auto &K = livermoreKernels();
  EXPECT_GE(K.size(), 14u);
  bool HasExp = false, HasConditional = false, HasRecurrence = false;
  for (const WorkloadSpec &S : K) {
    if (S.Number == 22)
      HasExp = true;
    if (S.Number == 24)
      HasConditional = true;
    if (S.Number == 5 || S.Number == 11)
      HasRecurrence = true;
  }
  EXPECT_TRUE(HasExp && HasConditional && HasRecurrence);
}

} // namespace
