//===- IIOptimalityTests.cpp - brute-force optimality cross-check --------------===//
//
// Part of warp-swp.
//
// The paper argues the linear scan from MII "almost always" achieves the
// true minimum initiation interval; later work (Roorda, "SMT-based
// optimal software pipelining") proves optimality exactly with a solver.
// This file does the same cross-check at toy scale: for dependence
// graphs of up to six nodes, an exact decision procedure establishes the
// true minimum feasible II, and the heuristic's achieved II must equal
// it.
//
// The exact procedure factors the problem the way ILP/SMT formulations
// do: only the residues t_i mod s touch the modulo reservation table, so
// enumerate residue vectors (s^N of them), reject those that oversubscribe
// a folded resource row, and for the survivors decide whether absolute
// times exist. Writing t_i = r_i + s*k_i turns every dependence edge
//   t_dst - t_src >= delay - omega*s
// into an integer difference constraint
//   k_dst - k_src >= ceil((delay - omega*s - r_dst + r_src) / s),
// which is feasible iff the constraint graph has no positive-weight
// cycle (Bellman-Ford over longest paths). The check is complete: every
// modulo schedule corresponds to some residue vector, and for a fixed
// residue vector the k-system captures precedence exactly.
//
//===----------------------------------------------------------------------===//

#include "swp/Pipeliner/ModuloScheduler.h"

#include "swp/Support/RNG.h"

#include <gtest/gtest.h>

#include <vector>

using namespace swp;

namespace {

/// Ceiling division for s > 0 and any a. C++ division truncates toward
/// zero, which already is the ceiling for negative dividends.
int64_t ceilDiv(int64_t A, int64_t S) {
  return A / S + (A % S > 0 ? 1 : 0);
}

/// Decides feasibility of the k-system for one residue vector: no
/// positive cycle in the difference-constraint graph.
bool precedenceFeasible(const DepGraph &G, const std::vector<unsigned> &Res,
                        unsigned S) {
  const unsigned N = G.numNodes();
  std::vector<int64_t> Pot(N, 0);
  // Bellman-Ford over longest paths; a change on pass N means a positive
  // cycle, i.e. the congruence-constrained precedence system is
  // unsatisfiable for this residue vector.
  for (unsigned Pass = 0; Pass <= N; ++Pass) {
    bool Changed = false;
    for (const DepEdge &E : G.edges()) {
      int64_t C = ceilDiv(static_cast<int64_t>(E.Delay) -
                              static_cast<int64_t>(E.Omega) * S -
                              static_cast<int64_t>(Res[E.Dst]) +
                              static_cast<int64_t>(Res[E.Src]),
                          S);
      if (Pot[E.Src] + C > Pot[E.Dst]) {
        Pot[E.Dst] = Pot[E.Src] + C;
        Changed = true;
      }
    }
    if (!Changed)
      return true;
  }
  return false;
}

/// DFS over residue vectors with incremental modulo-reservation pruning.
bool feasibleAtResidues(const DepGraph &G, const MachineDescription &MD,
                        unsigned S, std::vector<unsigned> &Res,
                        std::vector<std::vector<unsigned>> &Usage,
                        unsigned Node) {
  if (Node == G.numNodes())
    return precedenceFeasible(G, Res, S);
  for (unsigned R = 0; R != S; ++R) {
    bool Fits = true;
    const std::vector<ResourceUse> &Uses = G.unit(Node).reservation();
    size_t Placed = 0;
    for (const ResourceUse &U : Uses) {
      unsigned Row = (R + U.Cycle) % S;
      if (Usage[Row][U.ResId] + U.Units > MD.resource(U.ResId).Units) {
        Fits = false;
        break;
      }
      Usage[Row][U.ResId] += U.Units;
      ++Placed;
    }
    if (Fits) {
      Res[Node] = R;
      if (feasibleAtResidues(G, MD, S, Res, Usage, Node + 1))
        return true;
    }
    for (size_t I = 0; I != Placed; ++I)
      Usage[(R + Uses[I].Cycle) % S][Uses[I].ResId] -= Uses[I].Units;
  }
  return false;
}

/// Exact feasibility of interval \p S.
bool feasibleAt(const DepGraph &G, const MachineDescription &MD, unsigned S) {
  std::vector<unsigned> Res(G.numNodes(), 0);
  std::vector<std::vector<unsigned>> Usage(
      S, std::vector<unsigned>(MD.numResources(), 0));
  return feasibleAtResidues(G, MD, S, Res, Usage, 0);
}

/// True minimum feasible interval, scanning 1..Limit; 0 if none exists in
/// that range.
unsigned bruteMinII(const DepGraph &G, const MachineDescription &MD,
                    unsigned Limit) {
  for (unsigned S = 1; S <= Limit; ++S)
    if (feasibleAt(G, MD, S))
      return S;
  return 0;
}

/// A small random machine: 1-3 resources with 1-2 units each.
MachineDescription tinyMachine(RNG &R) {
  MachineDescription MD;
  unsigned NumRes = static_cast<unsigned>(R.uniform(1, 3));
  for (unsigned I = 0; I != NumRes; ++I)
    MD.addResource("r" + std::to_string(I),
                   static_cast<unsigned>(R.uniform(1, 2)));
  MD.setRegisterFileSizes(32, 32);
  MD.setOpcodeInfo(Opcode::Nop,
                   OpcodeInfo{1, {}, RegClass::None, 0, false, true});
  return MD;
}

/// A random dependence graph of at most six nodes with small latencies,
/// omega-0 edges forward only (a legal single-iteration body) and a few
/// loop-carried edges.
DepGraph tinyGraph(RNG &R, MachineDescription &MD, unsigned N) {
  std::vector<ScheduleUnit> Units;
  for (unsigned I = 0; I != N; ++I) {
    unsigned ResId = static_cast<unsigned>(R.uniform(0, MD.numResources() - 1));
    std::vector<ResourceUse> Uses = {{ResId, 0, 1}};
    Operation Op;
    Op.Opc = Opcode::Nop;
    Units.push_back(ScheduleUnit::makeReduced({UnitOp{Op, 0, {}}},
                                              std::move(Uses), 1, MD));
  }
  DepGraph G(std::move(Units));
  unsigned NumEdges = static_cast<unsigned>(R.uniform(N - 1, 2 * N));
  for (unsigned E = 0; E != NumEdges; ++E) {
    unsigned A = static_cast<unsigned>(R.uniform(0, N - 1));
    unsigned B = static_cast<unsigned>(R.uniform(0, N - 1));
    if (A != B && R.chance(0.7)) {
      if (A > B)
        std::swap(A, B);
      G.addEdge({A, B, static_cast<int>(R.uniform(1, 4)), 0, DepKind::Flow});
    } else {
      G.addEdge({A, B, static_cast<int>(R.uniform(1, 4)),
                 static_cast<unsigned>(R.uniform(1, 2)), DepKind::Mem});
    }
  }
  return G;
}

} // namespace

// Two hand-built sanity anchors with knowable optima before the random
// sweep: a pure recurrence (II = delay / omega distance) and a pure
// resource bottleneck (II = ops / units).
TEST(IIOptimality, RecurrenceBoundIsExact) {
  RNG R(1);
  MachineDescription MD = tinyMachine(R);
  while (MD.numResources() < 1)
    MD.addResource("r", 4);
  std::vector<ScheduleUnit> Units;
  for (unsigned I = 0; I != 2; ++I) {
    Operation Op;
    Op.Opc = Opcode::Nop;
    Units.push_back(ScheduleUnit::makeReduced(
        {UnitOp{Op, 0, {}}}, {{0, 0, 1}}, 1, MD));
  }
  DepGraph G(std::move(Units));
  G.addEdge({0, 1, 3, 0, DepKind::Flow});
  G.addEdge({1, 0, 3, 1, DepKind::Flow}); // Cycle: delay 6, distance 1.
  ModuloScheduleResult Res = moduloSchedule(G, MD);
  ASSERT_TRUE(Res.Success);
  EXPECT_EQ(Res.II, 6u);
  EXPECT_EQ(bruteMinII(G, MD, Res.II), Res.II);
}

TEST(IIOptimality, ResourceBoundIsExact) {
  MachineDescription MD;
  MD.addResource("alu", 1);
  MD.setRegisterFileSizes(32, 32);
  MD.setOpcodeInfo(Opcode::Nop,
                   OpcodeInfo{1, {}, RegClass::None, 0, false, true});
  std::vector<ScheduleUnit> Units;
  for (unsigned I = 0; I != 4; ++I) {
    Operation Op;
    Op.Opc = Opcode::Nop;
    Units.push_back(ScheduleUnit::makeReduced(
        {UnitOp{Op, 0, {}}}, {{0, 0, 1}}, 1, MD));
  }
  DepGraph G(std::move(Units)); // Four independent ops on one unit.
  ModuloScheduleResult Res = moduloSchedule(G, MD);
  ASSERT_TRUE(Res.Success);
  EXPECT_EQ(Res.II, 4u);
  EXPECT_EQ(bruteMinII(G, MD, Res.II), Res.II);
}

// The sweep: on every tiny graph where the heuristic finds a schedule,
// its II must be the true minimum (no feasible smaller interval exists),
// and the brute-force minimum must never undercut MII — which doubles as
// an exactness check on the ResMII / RecMII computation.
TEST(IIOptimality, HeuristicIIMatchesBruteForceMinimum) {
  unsigned Scheduled = 0, Tight = 0;
  for (uint64_t Seed = 7000; Seed != 7060; ++Seed) {
    RNG R(Seed);
    MachineDescription MD = tinyMachine(R);
    unsigned N = static_cast<unsigned>(R.uniform(2, 6));
    DepGraph G = tinyGraph(R, MD, N);
    ModuloScheduleResult Res = moduloSchedule(G, MD);
    if (!Res.Success)
      continue; // Infeasible recurrences are legal generator output.
    ++Scheduled;
    ASSERT_LE(Res.II, 24u) << "seed " << Seed << ": II too large to verify";
    unsigned Brute = bruteMinII(G, MD, Res.II);
    EXPECT_EQ(Brute, Res.II)
        << "seed " << Seed << ": heuristic achieved " << Res.II
        << " but interval " << Brute << " is feasible";
    EXPECT_GE(Brute, Res.MII)
        << "seed " << Seed << ": MII claims a bound the exact search beats";
    if (Res.II == Res.MII)
      ++Tight;
  }
  // Anti-vacuity: most graphs must schedule, and the lower bound must be
  // achieved often enough for the equality check to mean something.
  EXPECT_GE(Scheduled, 40u);
  EXPECT_GE(Tight, 30u);
}
