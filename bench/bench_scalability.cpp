//===- bench_scalability.cpp - E9: the section 6 scalability remark -------------===//
//
// Part of warp-swp.
//
// The paper's concluding observation: scaling up the data path helps
// loops whose iterations are independent (throughput follows the
// resources), while loops limited by the cycle length of their precedence
// graph gain nothing — the recurrence, not the hardware, is the bound.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== E9: scaling the data path (section 6) ===\n\n";

  TablePrinter T({"kernel", "kind", "x1 MFLOPS", "x2 MFLOPS", "x4 MFLOPS",
                  "x2/x1", "x4/x1"});
  bool AnyFailure = false;

  std::vector<std::pair<int, const char *>> Picks = {
      {7, "independent"}, {12, "independent"}, {5, "recurrence"},
      {11, "recurrence"}};

  // Every (kernel, scale factor) pair is an independent compile+simulate;
  // run the whole grid concurrently, three jobs per kernel.
  const unsigned Factors[3] = {1, 2, 4};
  std::vector<MachineDescription> MDs;
  for (unsigned F : Factors)
    MDs.push_back(MachineDescription::scaledWarpCell(F));

  std::vector<const WorkloadSpec *> Specs;
  std::vector<const char *> Kinds;
  std::vector<RunJob> Jobs;
  for (auto [Number, Kind] : Picks) {
    const WorkloadSpec *Spec = nullptr;
    for (const WorkloadSpec &S : livermoreKernels())
      if (S.Number == Number)
        Spec = &S;
    if (!Spec)
      continue;
    Specs.push_back(Spec);
    Kinds.push_back(Kind);
    for (const MachineDescription &MD : MDs)
      Jobs.push_back({Spec, &MD, CompilerOptions{}, true});
  }
  std::vector<RunResult> Results = runJobs(Jobs);

  for (size_t K = 0; K != Specs.size(); ++K) {
    double M[3] = {0, 0, 0};
    bool RowOk = true;
    for (int I = 0; I != 3; ++I) {
      const RunResult &R = Results[3 * K + I];
      if (!R.Ok) {
        std::cout << "FAILED: " << R.Error << "\n";
        AnyFailure = true;
        RowOk = false;
        break;
      }
      M[I] = R.CellMFLOPS;
    }
    if (!RowOk)
      continue;
    T.addRow({Specs[K]->Name, Kinds[K], TablePrinter::num(M[0], 2),
              TablePrinter::num(M[1], 2), TablePrinter::num(M[2], 2),
              TablePrinter::num(M[1] / M[0], 2),
              TablePrinter::num(M[2] / M[0], 2)});
  }
  T.print(std::cout);
  std::cout << "\nexpected shape: independent kernels scale with the "
               "hardware; recurrence kernels stay at the cycle-length "
               "bound (ratios near 1).\n";
  return AnyFailure ? 1 : 0;
}
