//===- bench/BenchSupport.cpp - Shared benchmark harness plumbing ---------------===//
//
// Part of warp-swp. See BenchSupport.h.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/API/Session.h"
#include "swp/Interp/Interpreter.h"
#include "swp/Sim/Simulator.h"
#include "swp/Support/ThreadPool.h"
#include "swp/Support/Trace.h"

using namespace swp;
using namespace swp::bench;

/// One session for the whole bench harness: all runs share its id space,
/// so a trace of a bench binary groups per-request spans under one
/// session. The in-place compileNow path is what benches need — they
/// simulate the mutated program — and it is thread-safe, so runJobs may
/// call it from every pool worker at once.
static Session &benchSession() {
  static Session S;
  return S;
}

RunResult swp::bench::runWorkload(const WorkloadSpec &Spec,
                                  const MachineDescription &MD,
                                  const CompilerOptions &Opts, bool Verify) {
  RunResult R;
  SWP_TRACE_SPAN(JobSpan, "benchWorkload");
  if (JobSpan.active())
    JobSpan.args("\"workload\": \"" + Spec.Name + "\"");
  BuiltWorkload W = Spec.Make();
  CompileResponse Resp = benchSession().compileNow(*W.Prog, MD, &Opts);
  CompileResult &CR = Resp.Result;
  if (!CR.Ok) {
    R.Error = Spec.Name + ": compile failed: " + CR.Error;
    return R;
  }
  SimResult Sim = simulate(CR.Code, *W.Prog, MD, W.Input);
  if (!Sim.State.Ok) {
    R.Error = Spec.Name + ": simulation failed: " + Sim.State.Error;
    return R;
  }
  if (Verify) {
    ProgramState Golden = interpret(*W.Prog, W.Input);
    if (!Golden.Ok) {
      R.Error = Spec.Name + ": interpreter failed: " + Golden.Error;
      return R;
    }
    std::string Mismatch = compareStates(*W.Prog, Golden, Sim.State);
    if (!Mismatch.empty()) {
      R.Error = Spec.Name + ": WRONG ANSWER: " + Mismatch;
      return R;
    }
  }
  R.Ok = true;
  R.Cycles = Sim.Cycles;
  R.Flops = Sim.State.Flops;
  R.CellMFLOPS = Sim.MFLOPS;
  R.CodeSize = CR.Code.size();
  R.Util = std::move(Sim.Util);
  R.Report = std::move(CR.Report);
  R.Report.HasUtilization = true;
  R.Report.Util = R.Util;
  return R;
}

std::vector<RunResult> swp::bench::runJobs(const std::vector<RunJob> &Jobs,
                                           ThreadPool &Pool) {
  std::vector<RunResult> Results(Jobs.size());
  Pool.parallelFor(Jobs.size(), [&](size_t I) {
    const RunJob &J = Jobs[I];
    Results[I] = runWorkload(*J.Spec, *J.MD, J.Opts, J.Verify);
  });
  return Results;
}

std::vector<RunResult> swp::bench::runJobs(const std::vector<RunJob> &Jobs,
                                           unsigned Threads) {
  // Default to the shared process-wide pool: harness invocations stop
  // paying thread spawn/join per call. An explicit thread count still
  // gets a private pool (thread-scaling sweeps need exact widths).
  if (Threads == 0)
    return runJobs(Jobs, ThreadPool::global());
  ThreadPool Pool(Threads);
  return runJobs(Jobs, Pool);
}

std::vector<RunResult>
swp::bench::runWorkloads(const std::vector<WorkloadSpec> &Specs,
                         const MachineDescription &MD,
                         const CompilerOptions &Opts, bool Verify,
                         unsigned Threads) {
  std::vector<RunJob> Jobs;
  Jobs.reserve(Specs.size());
  for (const WorkloadSpec &Spec : Specs)
    Jobs.push_back({&Spec, &MD, Opts, Verify});
  return runJobs(Jobs, Threads);
}

std::string swp::bench::bar(unsigned Count, unsigned Scale) {
  unsigned Len = (Count + Scale - 1) / Scale;
  return std::string(Len, '#');
}
