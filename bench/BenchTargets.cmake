# Benchmark harness: one binary per paper table/figure plus ablations.
# Declared at top level so build/bench/ holds only runnable binaries.

add_library(bench_support STATIC bench/BenchSupport.cpp)
target_include_directories(bench_support PUBLIC ${CMAKE_SOURCE_DIR}/bench)
target_link_libraries(bench_support PUBLIC
  swp_workloads swp_sim swp_interp swp_api)

function(swp_add_bench NAME)
  add_executable(${NAME} bench/${NAME}.cpp)
  target_link_libraries(${NAME} PRIVATE bench_support)
  set_target_properties(${NAME} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

swp_add_bench(bench_section2_example)
swp_add_bench(bench_table4_1)
swp_add_bench(bench_table4_2)
swp_add_bench(bench_figure4_1)
swp_add_bench(bench_figure4_2)
swp_add_bench(bench_code_size)
swp_add_bench(bench_unrolling_comparison)
swp_add_bench(bench_scalability)
swp_add_bench(bench_ablation_mve)
swp_add_bench(bench_ablation_search)
swp_add_bench(bench_ablation_hier)
swp_add_bench(bench_sched_micro)
target_link_libraries(bench_sched_micro PRIVATE benchmark::benchmark)
# --json resolves the checked-in seed baseline relative to the source
# tree and drops its default report in the build tree.
target_compile_definitions(bench_sched_micro PRIVATE
  SWP_SOURCE_DIR="${CMAKE_SOURCE_DIR}"
  SWP_BINARY_DIR="${CMAKE_BINARY_DIR}")

# The caching/batch-compile gate: warm-hit latency, batched throughput,
# and cached-vs-uncached bit-identity (see bench_cache.cpp).
swp_add_bench(bench_cache)
target_link_libraries(bench_cache PRIVATE swp_service swp_difftest)
target_compile_definitions(bench_cache PRIVATE
  SWP_SOURCE_DIR="${CMAKE_SOURCE_DIR}"
  SWP_BINARY_DIR="${CMAKE_BINARY_DIR}")

# `cmake --build build --target sched_micro_json` regenerates the
# scheduler-throughput gate report against the checked-in seed baseline.
add_custom_target(sched_micro_json
  COMMAND bench_sched_micro --json ${CMAKE_BINARY_DIR}/BENCH_sched_micro.json
  DEPENDS bench_sched_micro
  COMMENT "Measuring Livermore modulo-scheduling throughput")
