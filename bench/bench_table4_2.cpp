//===- bench_table4_2.cpp - E5: Livermore loops on a single cell ----------------===//
//
// Part of warp-swp.
//
// Regenerates Table 4-2: per Livermore kernel, single-precision MFLOPS on
// one cell, a lower bound on scheduling efficiency (MII / achieved II),
// and the speedup of the pipelined kernel over the locally compacted
// (unpipelined) one. The paper's headline shapes: most kernels schedule
// at (or within a hair of) the bound; recurrences (5, 11) cap MFLOPS at
// the critical-cycle rate; kernel 22's EXP expansion is refused by the
// pipeliner; harmonic-mean MFLOPS around 3.7 at 10 MFLOPS peak.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== E5 / Table 4-2: Livermore loops on one Warp cell ===\n";
  std::cout << "(sizes scaled for simulation; shapes, not absolute paper "
               "numbers)\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  TablePrinter T({"kernel", "name", "MFLOPS", "eff(bound)", "speedup",
                  "II", "MII", "pipelined"});

  double HMeanDenom = 0.0;
  unsigned HMeanCount = 0;
  bool AnyFailure = false;

  // Both compiles of every kernel run concurrently; results come back in
  // job order, two per kernel.
  const std::vector<WorkloadSpec> &Specs = livermoreKernels();
  std::vector<RunJob> Jobs;
  for (const WorkloadSpec &Spec : Specs) {
    Jobs.push_back({&Spec, &MD, CompilerOptions{}, true});
    Jobs.push_back({&Spec, &MD, baselineOptions(), true});
  }
  std::vector<RunResult> Results = runJobs(Jobs);

  for (size_t I = 0; I != Specs.size(); ++I) {
    const WorkloadSpec &Spec = Specs[I];
    const RunResult &Swp = Results[2 * I];
    const RunResult &Base = Results[2 * I + 1];
    if (!Swp.Ok || !Base.Ok) {
      std::cout << "FAILED: " << Swp.Error << Base.Error << "\n";
      AnyFailure = true;
      continue;
    }
    const LoopReport *L = Swp.Report.primaryLoop();
    double Speedup = static_cast<double>(Base.Cycles) / Swp.Cycles;
    std::string Eff = "-";
    std::string II = "-", MII = "-";
    bool Pipelined = false;
    if (L) {
      MII = std::to_string(L->MII);
      if (L->pipelined()) {
        Pipelined = true;
        II = std::to_string(L->II);
        Eff = TablePrinter::num(static_cast<double>(L->MII) / L->II, 2);
      }
    }
    T.addRow({std::to_string(Spec.Number), Spec.Name,
              TablePrinter::num(Swp.CellMFLOPS, 2), Eff,
              TablePrinter::num(Speedup, 2), II, MII,
              Pipelined ? "yes" : "no"});
    if (Swp.CellMFLOPS > 0) {
      HMeanDenom += 1.0 / Swp.CellMFLOPS;
      ++HMeanCount;
    }
  }
  T.print(std::cout);
  if (HMeanCount)
    std::cout << "\nH-Mean MFLOPS: "
              << TablePrinter::num(HMeanCount / HMeanDenom, 2)
              << "  (peak 10.0 per cell)\n";
  std::cout << "paper H-Mean: 3.70 on real Warp hardware\n";
  return AnyFailure ? 1 : 0;
}
