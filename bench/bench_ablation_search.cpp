//===- bench_ablation_search.cpp - A2: linear vs binary II search ---------------===//
//
// Part of warp-swp.
//
// The paper argues for linear search over the initiation interval
// because schedulability is not monotonic in s and the lower bound is
// usually achievable (section 2.2). This ablation compares the achieved
// II and the number of candidate intervals each strategy tries across
// the population: binary search can settle on a worse (larger) II when
// a failure below tricks it into discarding the low range.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== A2: linear vs binary search over the initiation "
               "interval ===\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  auto Population = syntheticPopulation(72, /*Seed=*/1988);

  uint64_t LinearTried = 0, BinaryTried = 0;
  uint64_t LinearCycles = 0, BinaryCycles = 0;
  unsigned Loops = 0, BinaryWorse = 0, BinaryBetter = 0;
  bool AnyFailure = false;

  for (const WorkloadSpec &Spec : Population) {
    CompilerOptions Lin;
    CompilerOptions Bin;
    Bin.Sched.BinarySearch = true;
    RunResult A = runWorkload(Spec, MD, Lin);
    RunResult B = runWorkload(Spec, MD, Bin);
    if (!A.Ok || !B.Ok) {
      std::cout << "FAILED: " << A.Error << B.Error << "\n";
      AnyFailure = true;
      continue;
    }
    LinearCycles += A.Cycles;
    BinaryCycles += B.Cycles;
    const auto &ALoops = A.Report.Loops;
    const auto &BLoops = B.Report.Loops;
    for (size_t I = 0; I != ALoops.size() && I != BLoops.size(); ++I) {
      const LoopReport &LA = ALoops[I];
      const LoopReport &LB = BLoops[I];
      if (!LA.pipelined() || !LB.pipelined())
        continue;
      ++Loops;
      LinearTried += LA.TriedIntervals;
      BinaryTried += LB.TriedIntervals;
      if (LB.II > LA.II)
        ++BinaryWorse;
      if (LB.II < LA.II)
        ++BinaryBetter;
    }
  }

  TablePrinter T({"metric", "linear", "binary"});
  T.addRow({"pipelined loops compared", std::to_string(Loops), ""});
  T.addRow({"candidate IIs tried (mean)",
            TablePrinter::num(double(LinearTried) / Loops, 2),
            TablePrinter::num(double(BinaryTried) / Loops, 2)});
  T.addRow({"total population cycles", std::to_string(LinearCycles),
            std::to_string(BinaryCycles)});
  T.addRow({"loops where binary II is worse / better", "",
            std::to_string(BinaryWorse) + " / " +
                std::to_string(BinaryBetter)});
  T.print(std::cout);
  std::cout << "\npaper's rationale: the bound is usually met on the "
               "first try, so linear search is cheap; binary search "
               "assumes monotonic schedulability, which does not hold.\n";
  return AnyFailure ? 1 : 0;
}
