//===- bench_ablation_hier.cpp - A3: hierarchical reduction ablation ------------===//
//
// Part of warp-swp.
//
// What hierarchical reduction (section 3) buys: without it, a loop whose
// body contains a conditional cannot be software pipelined at all — which
// was the state of the art the paper improved on. Measured over the
// conditional-bearing part of the population.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== A3: hierarchical reduction ablation (conditional "
               "loops) ===\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  auto Population = syntheticPopulation(72, /*Seed=*/1988);

  double SumWith = 0, SumWithout = 0;
  unsigned Count = 0;
  bool AnyFailure = false;
  TablePrinter T({"program", "speedup(with)", "speedup(without)"});

  for (const WorkloadSpec &Spec : Population) {
    if (Spec.Name.find("-cond") == std::string::npos)
      continue;
    CompilerOptions With;
    CompilerOptions Without;
    Without.PipelineConditionalLoops = false;
    RunResult Base = runWorkload(Spec, MD, baselineOptions());
    RunResult A = runWorkload(Spec, MD, With);
    RunResult B = runWorkload(Spec, MD, Without);
    if (!Base.Ok || !A.Ok || !B.Ok) {
      std::cout << "FAILED: " << Base.Error << A.Error << B.Error << "\n";
      AnyFailure = true;
      continue;
    }
    double SA = static_cast<double>(Base.Cycles) / A.Cycles;
    double SB = static_cast<double>(Base.Cycles) / B.Cycles;
    SumWith += SA;
    SumWithout += SB;
    ++Count;
    if (Count <= 10)
      T.addRow({Spec.Name, TablePrinter::num(SA, 2),
                TablePrinter::num(SB, 2)});
  }
  T.addRow({"... (" + std::to_string(Count) + " programs)", "", ""});
  T.addRow({"MEAN", TablePrinter::num(SumWith / Count, 2),
            TablePrinter::num(SumWithout / Count, 2)});
  T.print(std::cout);
  std::cout << "\nexpected shape: without reduction, conditional loops "
               "fall back to local compaction (speedup near 1); with it, "
               "they pipeline and speed up severalfold — the paper's "
               "point that conditionals need not be a barrier.\n";
  return AnyFailure ? 1 : 0;
}
