//===- bench_code_size.cpp - E7: the section 2.4 code-size accounting -----------===//
//
// Part of warp-swp.
//
// Regenerates the code-size claims of section 2.4: a pipelined loop's
// total code is bounded (the paper argues at most about 4x the
// unpipelined loop once the dual version is included), while the steady
// state — the part that must fit in an instruction buffer — is typically
// much SHORTER than the unpipelined loop body.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== E7: code size of pipelined loops (section 2.4) ===\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  TablePrinter T({"kernel", "unpipelined", "kernel(steady)", "total-loop",
                  "total/unpipelined", "unroll"});
  double MaxRatio = 0.0;
  bool AnyFailure = false;

  for (const WorkloadSpec &Spec : livermoreKernels()) {
    RunResult Swp = runWorkload(Spec, MD, CompilerOptions{});
    if (!Swp.Ok) {
      std::cout << "FAILED: " << Swp.Error << "\n";
      AnyFailure = true;
      continue;
    }
    const LoopReport *L = Swp.Report.primaryLoop();
    if (!L || !L->pipelined())
      continue;
    double Ratio =
        static_cast<double>(L->TotalLoopInsts) / L->UnpipelinedLen;
    MaxRatio = std::max(MaxRatio, Ratio);
    T.addRow({Spec.Name, std::to_string(L->UnpipelinedLen),
              std::to_string(L->KernelInsts),
              std::to_string(L->TotalLoopInsts),
              TablePrinter::num(Ratio, 2), std::to_string(L->Unroll)});
  }
  T.print(std::cout);
  std::cout << "\nworst total/unpipelined ratio: "
            << TablePrinter::num(MaxRatio, 2)
            << "  (paper bounds the total at about 4x; the steady state "
               "is what must fit the instruction buffer)\n";
  return AnyFailure ? 1 : 0;
}
