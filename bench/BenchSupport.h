//===- bench/BenchSupport.h - Shared benchmark harness plumbing -*- C++ -*-===//
//
// Part of warp-swp. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure benchmark binaries: compile a
/// workload under a policy, run it on the cycle-level simulator, verify
/// the final state against the scalar interpreter (a benchmark that
/// computes the wrong answer aborts), and report cycles / MFLOPS /
/// schedule quality.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_BENCH_BENCHSUPPORT_H
#define SWP_BENCH_BENCHSUPPORT_H

#include "swp/Codegen/Compiler.h"
#include "swp/Workloads/Workloads.h"

#include <string>
#include <vector>

namespace swp::bench {

/// Result of one compile+simulate run.
struct RunResult {
  bool Ok = false;
  std::string Error;
  uint64_t Cycles = 0;
  uint64_t Flops = 0;
  double CellMFLOPS = 0.0;
  size_t CodeSize = 0; ///< Emitted instructions.
  std::vector<LoopReport> Loops;
};

/// Builds, compiles, simulates and (by default) verifies one workload.
RunResult runWorkload(const WorkloadSpec &Spec, const MachineDescription &MD,
                      const CompilerOptions &Opts, bool Verify = true);

/// The locally-compacted baseline options.
inline CompilerOptions baselineOptions() {
  CompilerOptions O;
  O.EnablePipelining = false;
  return O;
}

/// Prints an ASCII histogram row bar.
std::string bar(unsigned Count, unsigned Scale = 1);

/// The innermost-loop report carrying the most schedule units (the
/// "primary" loop used for per-program quality columns).
const LoopReport *primaryLoop(const std::vector<LoopReport> &Loops);

} // namespace swp::bench

#endif // SWP_BENCH_BENCHSUPPORT_H
