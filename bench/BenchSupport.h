//===- bench/BenchSupport.h - Shared benchmark harness plumbing -*- C++ -*-===//
//
// Part of warp-swp. See DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure benchmark binaries: compile a
/// workload under a policy, run it on the cycle-level simulator, verify
/// the final state against the scalar interpreter (a benchmark that
/// computes the wrong answer aborts), and report cycles / MFLOPS /
/// schedule quality.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_BENCH_BENCHSUPPORT_H
#define SWP_BENCH_BENCHSUPPORT_H

#include "swp/Codegen/Compiler.h"
#include "swp/Workloads/Workloads.h"

#include <string>
#include <vector>

namespace swp {
class ThreadPool;
} // namespace swp

namespace swp::bench {

/// Result of one compile+simulate run.
struct RunResult {
  bool Ok = false;
  std::string Error;
  uint64_t Cycles = 0;
  uint64_t Flops = 0;
  double CellMFLOPS = 0.0;
  size_t CodeSize = 0; ///< Emitted instructions.
  /// Dynamic machine utilization of the simulated run (FU occupancy,
  /// issue-slot fill, stall breakdown).
  UtilizationReport Util;
  /// The compiler's structured per-loop report (see CompileReport.h);
  /// benches read decisions and intervals from here directly.
  CompileReport Report;
};

/// Builds, compiles, simulates and (by default) verifies one workload.
RunResult runWorkload(const WorkloadSpec &Spec, const MachineDescription &MD,
                      const CompilerOptions &Opts, bool Verify = true);

/// One entry in a batched run: a workload plus the machine and policy to
/// compile it under. The pointed-to spec and machine must outlive the
/// runJobs call.
struct RunJob {
  const WorkloadSpec *Spec = nullptr;
  const MachineDescription *MD = nullptr;
  CompilerOptions Opts;
  bool Verify = true;
};

/// Compiles and simulates a batch of jobs concurrently on a thread pool
/// (Threads == 0 reuses the process-wide ThreadPool::global(); an
/// explicit count gets a private pool of exactly that width). Each job is
/// independent -- the compiler and simulator share no mutable state -- so
/// results are identical to running the jobs serially, and come back in
/// input order.
std::vector<RunResult> runJobs(const std::vector<RunJob> &Jobs,
                               unsigned Threads = 0);

/// Same, on an explicit (injected) pool — tests pin pool identity/width.
std::vector<RunResult> runJobs(const std::vector<RunJob> &Jobs,
                               ThreadPool &Pool);

/// Convenience wrapper: one machine and one policy across a whole
/// population of specs, compiled in parallel, results in input order.
std::vector<RunResult> runWorkloads(const std::vector<WorkloadSpec> &Specs,
                                    const MachineDescription &MD,
                                    const CompilerOptions &Opts,
                                    bool Verify = true, unsigned Threads = 0);

/// The locally-compacted baseline options.
inline CompilerOptions baselineOptions() {
  CompilerOptions O;
  O.EnablePipelining = false;
  return O;
}

/// Prints an ASCII histogram row bar.
std::string bar(unsigned Count, unsigned Scale = 1);

} // namespace swp::bench

#endif // SWP_BENCH_BENCHSUPPORT_H
