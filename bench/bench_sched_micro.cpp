//===- bench_sched_micro.cpp - scheduler throughput microbenchmarks -------------===//
//
// Part of warp-swp.
//
// google-benchmark timings of the compiler itself (the paper notes that,
// unlike source unrolling, software pipelining leaves compilation time
// unaffected): dependence-graph construction, the symbolic closure,
// modulo scheduling, and whole-program compilation.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/DDG/Closure.h"
#include "swp/DDG/DDGBuilder.h"
#include "swp/DDG/MII.h"
#include "swp/IR/IRBuilder.h"
#include "swp/Pipeliner/HierarchicalReducer.h"
#include "swp/Pipeliner/ModuloScheduler.h"

#include <benchmark/benchmark.h>

using namespace swp;

namespace {

/// A chain-of-multiply-adds loop body with \p Length operations.
std::unique_ptr<Program> chainProgram(unsigned Length) {
  auto P = std::make_unique<Program>();
  IRBuilder B(*P);
  unsigned A = P->createArray("a", RegClass::Float, 4096);
  unsigned C = P->createArray("c", RegClass::Float, 4096);
  VReg K = P->createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 1023);
  VReg V = B.fload(A, B.ix(L));
  for (unsigned I = 0; I != Length; ++I)
    V = (I % 2 != 0) ? B.fadd(V, K) : B.fmul(V, K);
  B.fstore(C, B.ix(L), V);
  B.endFor();
  return P;
}

DepGraph graphFor(Program &P, const MachineDescription &MD) {
  auto *For = cast<ForStmt>(P.Body.back().get());
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = For->LoopId;
  return buildLoopDepGraph(reduceBodyToUnits(For->Body, MD, For->LoopId),
                           MD, Opts);
}

void BM_DDGBuild(benchmark::State &State) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram(static_cast<unsigned>(State.range(0)));
  auto *For = cast<ForStmt>(P->Body.back().get());
  for (auto _ : State) {
    DDGBuildOptions Opts;
    Opts.CurrentLoopId = For->LoopId;
    DepGraph G = buildLoopDepGraph(
        reduceBodyToUnits(For->Body, MD, For->LoopId), MD, Opts);
    benchmark::DoNotOptimize(G.numNodes());
  }
}
BENCHMARK(BM_DDGBuild)->Arg(16)->Arg(64)->Arg(256);

void BM_ModuloSchedule(benchmark::State &State) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram(static_cast<unsigned>(State.range(0)));
  DepGraph G = graphFor(*P, MD);
  for (auto _ : State) {
    ModuloScheduleResult R = moduloSchedule(G, MD);
    benchmark::DoNotOptimize(R.II);
  }
}
BENCHMARK(BM_ModuloSchedule)->Arg(16)->Arg(64)->Arg(256);

void BM_SymbolicClosure(benchmark::State &State) {
  // A recurrence-heavy loop so the SCC is nontrivial.
  MachineDescription MD = MachineDescription::warpCell();
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 4096);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(1, 1023);
  VReg V = B.fload(A, B.ix(L, 1, -1));
  for (int I = 0; I != State.range(0); ++I)
    V = B.fadd(V, K);
  B.fstore(A, B.ix(L), V);
  B.endFor();
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = L->LoopId;
  DepGraph G = buildLoopDepGraph(
      reduceBodyToUnits(L->Body, MD, L->LoopId), MD, Opts);
  unsigned Rec = recMII(G);
  auto SCCs = G.stronglyConnectedComponents();
  const std::vector<unsigned> *Big = nullptr;
  for (const auto &C : SCCs)
    if (!Big || C.size() > Big->size())
      Big = &C;
  for (auto _ : State) {
    SCCClosure Cl(G, *Big, Rec);
    benchmark::DoNotOptimize(Cl.criticalCycleBound());
  }
}
BENCHMARK(BM_SymbolicClosure)->Arg(8)->Arg(32)->Arg(64);

void BM_CompileLivermoreKernel(benchmark::State &State) {
  MachineDescription MD = MachineDescription::warpCell();
  const WorkloadSpec &Spec =
      livermoreKernels()[static_cast<size_t>(State.range(0))];
  for (auto _ : State) {
    BuiltWorkload W = Spec.Make();
    CompileResult R = compileProgram(*W.Prog, MD, CompilerOptions{});
    benchmark::DoNotOptimize(R.Code.size());
  }
}
BENCHMARK(BM_CompileLivermoreKernel)->Arg(0)->Arg(4)->Arg(10);

} // namespace

BENCHMARK_MAIN();
