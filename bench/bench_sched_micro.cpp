//===- bench_sched_micro.cpp - scheduler throughput microbenchmarks -------------===//
//
// Part of warp-swp.
//
// google-benchmark timings of the compiler itself (the paper notes that,
// unlike source unrolling, software pipelining leaves compilation time
// unaffected): dependence-graph construction, the symbolic closure,
// modulo scheduling, and whole-program compilation.
//
// `--json [out [baseline]]` switches to the scheduler-throughput gate:
// wall time of modulo-scheduling every innermost Livermore loop,
// aggregated SchedulerStats, and the speedup against the checked-in seed
// baseline, written as BENCH_sched_micro.json (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/DDG/Closure.h"
#include "swp/DDG/DDGBuilder.h"
#include "swp/DDG/MII.h"
#include "swp/IR/Expansion.h"
#include "swp/IR/IRBuilder.h"
#include "swp/IR/Transforms.h"
#include "swp/Pipeliner/HierarchicalReducer.h"
#include "swp/Pipeliner/LoopUtils.h"
#include "swp/Metrics/Metrics.h"
#include "swp/Pipeliner/ModuloScheduler.h"
#include "swp/Sched/Utilization.h"
#include "swp/Support/Trace.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace swp;

namespace {

/// A chain-of-multiply-adds loop body with \p Length operations.
std::unique_ptr<Program> chainProgram(unsigned Length) {
  auto P = std::make_unique<Program>();
  IRBuilder B(*P);
  unsigned A = P->createArray("a", RegClass::Float, 4096);
  unsigned C = P->createArray("c", RegClass::Float, 4096);
  VReg K = P->createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(0, 1023);
  VReg V = B.fload(A, B.ix(L));
  for (unsigned I = 0; I != Length; ++I)
    V = (I % 2 != 0) ? B.fadd(V, K) : B.fmul(V, K);
  B.fstore(C, B.ix(L), V);
  B.endFor();
  return P;
}

DepGraph graphFor(Program &P, const MachineDescription &MD) {
  auto *For = cast<ForStmt>(P.Body.back().get());
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = For->LoopId;
  return buildLoopDepGraph(reduceBodyToUnits(For->Body, MD, For->LoopId),
                           MD, Opts);
}

void BM_DDGBuild(benchmark::State &State) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram(static_cast<unsigned>(State.range(0)));
  auto *For = cast<ForStmt>(P->Body.back().get());
  for (auto _ : State) {
    DDGBuildOptions Opts;
    Opts.CurrentLoopId = For->LoopId;
    DepGraph G = buildLoopDepGraph(
        reduceBodyToUnits(For->Body, MD, For->LoopId), MD, Opts);
    benchmark::DoNotOptimize(G.numNodes());
  }
}
BENCHMARK(BM_DDGBuild)->Arg(16)->Arg(64)->Arg(256);

void BM_ModuloSchedule(benchmark::State &State) {
  MachineDescription MD = MachineDescription::warpCell();
  auto P = chainProgram(static_cast<unsigned>(State.range(0)));
  DepGraph G = graphFor(*P, MD);
  for (auto _ : State) {
    ModuloScheduleResult R = moduloSchedule(G, MD);
    benchmark::DoNotOptimize(R.II);
  }
}
BENCHMARK(BM_ModuloSchedule)->Arg(16)->Arg(64)->Arg(256);

void BM_SymbolicClosure(benchmark::State &State) {
  // A recurrence-heavy loop so the SCC is nontrivial.
  MachineDescription MD = MachineDescription::warpCell();
  Program P;
  IRBuilder B(P);
  unsigned A = P.createArray("a", RegClass::Float, 4096);
  VReg K = P.createVReg(RegClass::Float, "k", /*LiveIn=*/true);
  ForStmt *L = B.beginForImm(1, 1023);
  VReg V = B.fload(A, B.ix(L, 1, -1));
  for (int I = 0; I != State.range(0); ++I)
    V = B.fadd(V, K);
  B.fstore(A, B.ix(L), V);
  B.endFor();
  DDGBuildOptions Opts;
  Opts.CurrentLoopId = L->LoopId;
  DepGraph G = buildLoopDepGraph(
      reduceBodyToUnits(L->Body, MD, L->LoopId), MD, Opts);
  unsigned Rec = recMII(G);
  auto SCCs = G.stronglyConnectedComponents();
  const std::vector<unsigned> *Big = nullptr;
  for (const auto &C : SCCs)
    if (!Big || C.size() > Big->size())
      Big = &C;
  for (auto _ : State) {
    SCCClosure Cl(G, *Big, Rec);
    benchmark::DoNotOptimize(Cl.criticalCycleBound());
  }
}
BENCHMARK(BM_SymbolicClosure)->Arg(8)->Arg(32)->Arg(64);

void BM_CompileLivermoreKernel(benchmark::State &State) {
  MachineDescription MD = MachineDescription::warpCell();
  const WorkloadSpec &Spec =
      livermoreKernels()[static_cast<size_t>(State.range(0))];
  for (auto _ : State) {
    BuiltWorkload W = Spec.Make();
    CompileResult R = compileProgram(*W.Prog, MD, CompilerOptions{});
    benchmark::DoNotOptimize(R.Code.size());
  }
}
BENCHMARK(BM_CompileLivermoreKernel)->Arg(0)->Arg(4)->Arg(10);

//===----------------------------------------------------------------------===//
// --json mode: the scheduler-throughput gate.
//===----------------------------------------------------------------------===//

/// Every schedulable innermost Livermore loop, prepared exactly as the
/// compiler driver prepares them before modulo scheduling.
std::vector<DepGraph> livermoreLoopGraphs(const MachineDescription &MD) {
  std::vector<DepGraph> Graphs;
  for (const WorkloadSpec &Spec : livermoreKernels()) {
    BuiltWorkload W = Spec.Make();
    Program &P = *W.Prog;
    expandLibraryOps(P);
    while (eliminateDeadCode(P) + hoistLoopInvariants(P) +
               localValueNumbering(P) !=
           0) {
    }
    for (ForStmt *For : innermostLoops(P.Body)) {
      prepareLoopForCodegen(P, *For);
      std::vector<ScheduleUnit> Units =
          reduceBodyToUnits(For->Body, MD, For->LoopId);
      if (Units.empty())
        continue;
      DDGBuildOptions Opts;
      Opts.CurrentLoopId = For->LoopId;
      Graphs.push_back(buildLoopDepGraph(Units, MD, Opts));
    }
  }
  return Graphs;
}

/// Extracts the "ms_per_sweep_min" value from a baseline JSON written by
/// an earlier run of this mode; 0 when absent or unreadable.
double baselineMsPerSweep(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return 0.0;
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();
  size_t Key = Text.find("\"ms_per_sweep_min\"");
  if (Key == std::string::npos)
    return 0.0;
  size_t Colon = Text.find(':', Key);
  if (Colon == std::string::npos)
    return 0.0;
  return std::strtod(Text.c_str() + Colon + 1, nullptr);
}

int runJsonMode(const std::string &OutPath, const std::string &BaselinePath) {
  // Fail on an unwritable destination before spending time measuring.
  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  MachineDescription MD = MachineDescription::warpCell();
  std::vector<DepGraph> Graphs = livermoreLoopGraphs(MD);

  // Warm-up sweep; also the deterministic check value (sum of IIs), which
  // pins the schedules: any change in scheduling decisions moves it.
  uint64_t CheckOne = 0;
  for (const DepGraph &G : Graphs)
    CheckOne += moduloSchedule(G, MD).II;
  uint64_t Check = 0;

  // Min-of-repetitions: on a shared machine the minimum is the stable
  // statistic; each repetition averages over enough sweeps to cover
  // clock granularity.
  constexpr int Reps = 5, Sweeps = 10;
  double MinMs = 0.0, SumMs = 0.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    for (int S = 0; S != Sweeps; ++S)
      for (const DepGraph &G : Graphs)
        Check += moduloSchedule(G, MD).II;
    auto T1 = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(T1 - T0).count() / Sweeps;
    SumMs += Ms;
    if (Rep == 0 || Ms < MinMs)
      MinMs = Ms;
  }
  if (Check != CheckOne * Reps * Sweeps) {
    std::fprintf(stderr, "nondeterministic schedules: check %llu != %llu\n",
                 static_cast<unsigned long long>(Check),
                 static_cast<unsigned long long>(CheckOne * Reps * Sweeps));
    return 1;
  }

  // The same measurement with metrics recording live: every search now
  // pays its real record cost (a handful of relaxed atomic adds into the
  // thread's shard). Gated against the same baseline as the disabled
  // path — sharded recording is designed to be noise-level.
  const bool WasEnabled = metrics::enabled();
  metrics::setEnabled(true);
  uint64_t CheckM = 0;
  double MinMsMetrics = 0.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    for (int S = 0; S != Sweeps; ++S)
      for (const DepGraph &G : Graphs)
        CheckM += moduloSchedule(G, MD).II;
    auto T1 = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(T1 - T0).count() / Sweeps;
    if (Rep == 0 || Ms < MinMsMetrics)
      MinMsMetrics = Ms;
  }
  metrics::setEnabled(WasEnabled);
  if (CheckM != CheckOne * Reps * Sweeps) {
    std::fprintf(stderr,
                 "metrics recording changed schedules: check %llu != %llu\n",
                 static_cast<unsigned long long>(CheckM),
                 static_cast<unsigned long long>(CheckOne * Reps * Sweeps));
    return 1;
  }

  // One instrumented sweep for the aggregate counters and the static
  // kernel-utilization summary (section 4's efficiency measure, averaged
  // over every scheduled loop).
  SchedulerStats Agg;
  double SumBottleneck = 0.0, SumIssueFill = 0.0;
  unsigned NumScheduled = 0;
  for (const DepGraph &G : Graphs) {
    ModuloScheduleResult R = moduloSchedule(G, MD);
    Agg.merge(R.Stats);
    if (R.Success) {
      UtilizationReport U = scheduleUtilization(G, R.Sched, R.II, MD);
      SumBottleneck += U.bottleneckOccupancy();
      SumIssueFill += U.issueFillRate();
      ++NumScheduled;
    }
  }

  double Baseline = baselineMsPerSweep(BaselinePath);

  // Tracing-overhead gate: with no trace session active (the default),
  // throughput must stay within noise of the PR 1 scheduler-overhaul
  // baseline — the instrumentation's disabled cost is one relaxed atomic
  // load per span. The 1.5x margin absorbs shared-machine noise; a real
  // regression (locking or allocation on the hot path) blows well past
  // it.
  double OverheadRef = baselineMsPerSweep(
#ifdef SWP_SOURCE_DIR
      std::string(SWP_SOURCE_DIR) +
      "/bench/baselines/BENCH_sched_micro_overhaul.json"
#else
      "bench/baselines/BENCH_sched_micro_overhaul.json"
#endif
  );
  bool OverheadOk = OverheadRef <= 0.0 || MinMs <= 1.5 * OverheadRef;
  if (!OverheadOk)
    std::fprintf(stderr,
                 "tracing-disabled throughput regressed: %.4f ms/sweep vs "
                 "overhaul baseline %.4f (limit 1.5x)\n",
                 MinMs, OverheadRef);

  // Metrics-overhead gate: the same bound with recording enabled.
  bool MetricsOverheadOk =
      OverheadRef <= 0.0 || MinMsMetrics <= 1.5 * OverheadRef;
  if (!MetricsOverheadOk)
    std::fprintf(stderr,
                 "metrics-enabled throughput regressed: %.4f ms/sweep vs "
                 "overhaul baseline %.4f (limit 1.5x)\n",
                 MinMsMetrics, OverheadRef);

  char Buf[3072];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\n"
      "  \"bench\": \"sched_micro\",\n"
      "  \"suite\": \"livermore-innermost-loops\",\n"
      "  \"graphs\": %zu,\n"
      "  \"reps\": %d,\n"
      "  \"sweeps_per_rep\": %d,\n"
      "  \"ms_per_sweep_min\": %.4f,\n"
      "  \"ms_per_sweep_mean\": %.4f,\n"
      "  \"check_sum_of_ii\": %llu,\n"
      "  \"stats_per_sweep\": {\n"
      "    \"intervals_tried\": %llu,\n"
      "    \"slots_probed\": %llu,\n"
      "    \"component_retries\": %llu,\n"
      "    \"failed_intervals\": %llu,\n"
      "    \"fail_causes\": {\"precedence_range\": %llu, "
      "\"resource_conflict\": %llu, \"slot_abort\": %llu, "
      "\"stage_limit\": %llu},\n"
      "    \"closure_build_seconds\": %.6f,\n"
      "    \"phase1_seconds\": %.6f,\n"
      "    \"phase2_seconds\": %.6f,\n"
      "    \"total_seconds\": %.6f\n"
      "  },\n"
      "  \"utilization\": {\n"
      "    \"loops_scheduled\": %u,\n"
      "    \"mean_bottleneck_occupancy\": %.4f,\n"
      "    \"mean_issue_fill\": %.4f\n"
      "  },\n"
      "  \"trace_compiled_in\": %s,\n"
      "  \"trace_overhead_ok\": %s,\n"
      "  \"metrics_compiled_in\": %s,\n"
      "  \"ms_per_sweep_min_metrics\": %.4f,\n"
      "  \"metrics_overhead_ok\": %s,\n"
      "  \"baseline_ms_per_sweep\": %.4f,\n"
      "  \"speedup_vs_baseline\": %.2f\n"
      "}\n",
      Graphs.size(), Reps, Sweeps, MinMs, SumMs / Reps,
      static_cast<unsigned long long>(CheckOne),
      static_cast<unsigned long long>(Agg.IntervalsTried),
      static_cast<unsigned long long>(Agg.SlotsProbed),
      static_cast<unsigned long long>(Agg.ComponentRetries),
      static_cast<unsigned long long>(Agg.failedIntervals()),
      static_cast<unsigned long long>(Agg.FailPrecedence),
      static_cast<unsigned long long>(Agg.FailResource),
      static_cast<unsigned long long>(Agg.FailSlotAbort),
      static_cast<unsigned long long>(Agg.FailStageLimit),
      Agg.ClosureBuildSeconds, Agg.Phase1Seconds, Agg.Phase2Seconds,
      Agg.TotalSeconds, NumScheduled,
      NumScheduled ? SumBottleneck / NumScheduled : 0.0,
      NumScheduled ? SumIssueFill / NumScheduled : 0.0,
      trace::compiledIn() ? "true" : "false", OverheadOk ? "true" : "false",
      metrics::compiledIn() ? "true" : "false", MinMsMetrics,
      MetricsOverheadOk ? "true" : "false", Baseline,
      Baseline > 0 ? Baseline / MinMs : 0.0);
  Out << Buf;
  std::printf("%s", Buf);
  std::printf("wrote %s\n", OutPath.c_str());
  return OverheadOk && MetricsOverheadOk ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  // `--json [out [baseline]]` bypasses google-benchmark entirely.
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) != "--json")
      continue;
    // Default outputs land in the build tree, never the source checkout.
    std::string Out;
    if (I + 1 < argc) {
      Out = argv[I + 1];
    } else {
#ifdef SWP_BINARY_DIR
      Out = std::string(SWP_BINARY_DIR) + "/BENCH_sched_micro.json";
#else
      Out = "BENCH_sched_micro.json";
#endif
    }
    std::string Baseline;
    if (I + 2 < argc) {
      Baseline = argv[I + 2];
    } else {
#ifdef SWP_SOURCE_DIR
      Baseline =
          std::string(SWP_SOURCE_DIR) + "/bench/baselines/BENCH_sched_micro_seed.json";
#endif
    }
    return runJsonMode(Out, Baseline);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
