//===- bench_cache.cpp - schedule cache / compile service gate ------------------===//
//
// Part of warp-swp.
//
// The caching gate: measures the content-addressed schedule cache and the
// batched compile service against uncached serial compilation, and proves
// the cache can only change compile time, never code:
//
//  * warm-hit latency: a repeat request through a warm CompileService
//    must run >= 10x faster than the cold pass that populated it;
//  * batched throughput: a duplicate-heavy corpus through compileBatch
//    (single-flight dedup + memo + shared schedule cache) must beat
//    uncached one-at-a-time compiles by >= 3x;
//  * bit-identity: for every workload (Livermore + Table 4-1 user
//    programs), cached, memoized, and disk-tier-served compiles must
//    match the uncached compilation byte for byte, and the full
//    differential harness (interpreter vs simulator, pipelined vs not,
//    ParanoidVerify on) must pass with the cache enabled.
//
// `--json [out [baseline]]` writes the gate report (default
// BENCH_cache.json, baseline bench/baselines/BENCH_cache_seed.json);
// running with no arguments does the same. Exit 0 iff every gate holds.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/API/Session.h"
#include "swp/Metrics/Metrics.h"
#include "swp/Service/CompileService.h"
#include "swp/Service/ScheduleCache.h"
#include "swp/Verify/Differential.h"
#include "swp/Workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace swp;

namespace {

/// Wall-clock milliseconds of one call to \p Fn.
template <typename Fn> double timeMs(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

CompileJob jobFor(const WorkloadSpec &Spec, const MachineDescription &MD,
                  const CompilerOptions &Opts) {
  CompileJob J;
  J.MD = &MD;
  J.Opts = Opts;
  J.Make = [&Spec] { return std::move(Spec.Make().Prog); };
  return J;
}

/// Extracts "cold_ms_min" from a previous run's JSON; 0 when absent.
double baselineColdMs(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return 0.0;
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  size_t Key = Text.find("\"cold_ms_min\"");
  if (Key == std::string::npos)
    return 0.0;
  size_t Colon = Text.find(':', Key);
  if (Colon == std::string::npos)
    return 0.0;
  return std::strtod(Text.c_str() + Colon + 1, nullptr);
}

int runGate(const std::string &OutPath, const std::string &BaselinePath) {
  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  MachineDescription MD = MachineDescription::warpCell();
  const std::vector<WorkloadSpec> &Kernels = livermoreKernels();
  CompilerOptions Opts; // defaults: pipelining on, no verify overhead

  // Telemetry rides along: the whole gate runs with recording enabled,
  // and the final snapshot must be self-consistent (every cache lookup
  // resolved as exactly one hit or miss; checked below).
  metrics::setEnabled(true);

  // Uncached reference: every kernel compiled directly, and the code each
  // one must reproduce byte for byte below. Job keys are precomputed here
  // — a service client knows its content hash — so warm requests measure
  // the pure lookup path.
  std::vector<std::string> RefCode(Kernels.size());
  std::vector<Fingerprint> Keys(Kernels.size());
  for (size_t I = 0; I != Kernels.size(); ++I) {
    BuiltWorkload W = Kernels[I].Make();
    Keys[I] = CompileService::jobKey(*W.Prog, MD, Opts);
    CompileResult R = compileProgram(*W.Prog, MD, Opts);
    if (!R.Ok) {
      std::fprintf(stderr, "reference compile failed: %s: %s\n",
                   Kernels[I].Name.c_str(), R.Error.c_str());
      return 1;
    }
    RefCode[I] = vliwProgramToString(R.Code, MD);
  }

  //===--------------------------------------------------------------------===//
  // Gate 1: warm-hit latency >= 10x below cold.
  //===--------------------------------------------------------------------===//

  // Min over repetitions (each rep a fresh service): the minimum is the
  // stable statistic on a shared machine.
  constexpr int Reps = 5;
  double ColdMs = 0.0, WarmMs = 0.0;
  bool BitIdentical = true;
  CacheStats LastCache;
  ServiceStats LastService;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    ScheduleCache Cache;
    CompileService::Config SC;
    SC.Cache = &Cache;
    CompileService Service(SC);
    std::vector<CompileResult> Cold(Kernels.size()), Warm(Kernels.size());
    double C = timeMs([&] {
      for (size_t I = 0; I != Kernels.size(); ++I) {
        CompileJob J = jobFor(Kernels[I], MD, Opts);
        J.Key = Keys[I];
        Cold[I] = Service.compileOne(J);
      }
    });
    double W = timeMs([&] {
      for (size_t I = 0; I != Kernels.size(); ++I) {
        CompileJob J = jobFor(Kernels[I], MD, Opts);
        J.Key = Keys[I];
        Warm[I] = Service.compileOne(J);
      }
    });
    for (size_t I = 0; I != Kernels.size(); ++I) {
      BitIdentical &= Cold[I].Ok && Warm[I].Ok;
      BitIdentical &= vliwProgramToString(Cold[I].Code, MD) == RefCode[I];
      BitIdentical &= vliwProgramToString(Warm[I].Code, MD) == RefCode[I];
    }
    if (Rep == 0 || C < ColdMs)
      ColdMs = C;
    if (Rep == 0 || W < WarmMs)
      WarmMs = W;
    LastCache = Cache.stats();
    LastService = Service.stats();
  }
  double WarmSpeedup = WarmMs > 0.0 ? ColdMs / WarmMs : 0.0;
  bool WarmOk = WarmSpeedup >= 10.0;

  //===--------------------------------------------------------------------===//
  // Gate 2: batched throughput >= 3x uncached serial on a duplicate-heavy
  // corpus (the service-traffic shape: many clients, few distinct loops).
  //===--------------------------------------------------------------------===//

  constexpr unsigned Dup = 6;
  std::vector<const WorkloadSpec *> Corpus;
  for (unsigned D = 0; D != Dup; ++D)
    for (const WorkloadSpec &Spec : Kernels)
      Corpus.push_back(&Spec);

  double SerialMs = 0.0, BatchMs = 0.0;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    double S = timeMs([&] {
      for (const WorkloadSpec *Spec : Corpus) {
        BuiltWorkload W = Spec->Make();
        CompileResult R = compileProgram(*W.Prog, MD, Opts);
        if (!R.Ok)
          BitIdentical = false;
      }
    });
    ScheduleCache Cache;
    CompileService::Config SC;
    SC.Cache = &Cache;
    CompileService Service(SC);
    std::vector<CompileJob> Jobs;
    Jobs.reserve(Corpus.size());
    for (size_t I = 0; I != Corpus.size(); ++I) {
      Jobs.push_back(jobFor(*Corpus[I], MD, Opts));
      Jobs.back().Key = Keys[I % Kernels.size()];
    }
    std::vector<CompileResult> Results;
    double B = timeMs([&] { Results = Service.compileBatch(Jobs); });
    for (size_t I = 0; I != Results.size(); ++I) {
      BitIdentical &= Results[I].Ok;
      BitIdentical &= vliwProgramToString(Results[I].Code, MD) ==
                      RefCode[I % Kernels.size()];
    }
    if (Rep == 0 || S < SerialMs)
      SerialMs = S;
    if (Rep == 0 || B < BatchMs)
      BatchMs = B;
  }
  double BatchSpeedup = BatchMs > 0.0 ? SerialMs / BatchMs : 0.0;
  bool BatchOk = BatchSpeedup >= 3.0;

  //===--------------------------------------------------------------------===//
  // Gate 3: the disk tier serves bit-identical code, and the differential
  // harness passes with caching enabled on every workload.
  //===--------------------------------------------------------------------===//

  uint64_t DiskHits = 0;
  {
    // The disk tier lives in the build tree, not the source checkout.
#ifdef SWP_BINARY_DIR
    const std::string Dir = std::string(SWP_BINARY_DIR) + "/bench_cache.dir";
#else
    const std::string Dir = "bench_cache.dir";
#endif
    {
      ScheduleCacheConfig CC;
      CC.Dir = Dir;
      ScheduleCache Cache(CC);
      Opts.Cache = &Cache;
      for (const WorkloadSpec &Spec : Kernels) {
        BuiltWorkload W = Spec.Make();
        compileProgram(*W.Prog, MD, Opts); // populate the disk tier
      }
    }
    ScheduleCacheConfig CC;
    CC.Dir = Dir;
    ScheduleCache Cache(CC); // fresh memory, same directory
    Opts.Cache = &Cache;
    for (size_t I = 0; I != Kernels.size(); ++I) {
      BuiltWorkload W = Kernels[I].Make();
      CompileResult R = compileProgram(*W.Prog, MD, Opts);
      BitIdentical &= R.Ok && vliwProgramToString(R.Code, MD) == RefCode[I];
    }
    DiskHits = Cache.stats().DiskHits;
    Opts.Cache = nullptr;
  }
  bool DiskOk = DiskHits > 0;

  bool DifferentialOk = true;
  {
    ScheduleCache Cache;
    CompilerOptions Base;
    Base.Cache = &Cache;
    for (const std::vector<WorkloadSpec> *Suite :
         {&livermoreKernels(), &userPrograms()})
      for (const WorkloadSpec &Spec : *Suite) {
        DiffOutcome O = runDifferential(Spec, MD, Base);
        // Run each workload twice so the second pass is served from the
        // cache populated by the first — the cached path is what the
        // interpreter-vs-simulator check must validate.
        DiffOutcome O2 = runDifferential(Spec, MD, Base);
        if (!O.Ok || !O2.Ok) {
          DifferentialOk = false;
          std::fprintf(stderr, "differential failed: %s: %s\n",
                       Spec.Name.c_str(),
                       (!O.Ok ? O.Error : O2.Error).c_str());
        }
      }
  }

  //===--------------------------------------------------------------------===//
  // Gate 4: one Session::submitBatch mixing targets — the built-in cell
  // and a machine loaded from a JSON target file — must reproduce serial
  // single-target compileProgram byte for byte per target, with cache
  // keys separated per target (every (kernel, target) pair compiles
  // exactly once; nothing is served across machines).
  //===--------------------------------------------------------------------===//

  bool MultiTargetOk = true;
  bool TargetsDiffer = false;
  {
    TargetRegistry Reg;
    TargetRegistry::registerBuiltins(Reg);
    std::string LoadErr;
#ifdef SWP_SOURCE_DIR
    LoadErr = Reg.loadFile(std::string(SWP_SOURCE_DIR) +
                           "/examples/targets/warp-cell-fast.json");
#else
    LoadErr = "bench built without SWP_SOURCE_DIR";
#endif
    if (!LoadErr.empty()) {
      std::fprintf(stderr, "target file load failed: %s\n", LoadErr.c_str());
      MultiTargetOk = false;
    } else {
      const std::vector<std::string> TargetNames = {"warp-cell",
                                                    "warp-cell-fast"};
      // Serial single-target reference, bare compileProgram.
      std::vector<std::string> Ref(TargetNames.size() * Kernels.size());
      for (size_t T = 0; T != TargetNames.size(); ++T) {
        const MachineDescription &TMD = *Reg.lookup(TargetNames[T]);
        for (size_t I = 0; I != Kernels.size(); ++I) {
          BuiltWorkload W = Kernels[I].Make();
          CompileResult R = compileProgram(*W.Prog, TMD, Opts);
          MultiTargetOk &= R.Ok;
          Ref[T * Kernels.size() + I] = vliwProgramToString(R.Code, TMD);
        }
      }

      ScheduleCache Cache;
      SessionConfig SC;
      SC.Registry = &Reg;
      SC.Cache = &Cache;
      SC.DefaultOpts = Opts;
      Session Sess(SC);
      std::vector<CompileRequest> Reqs;
      Reqs.reserve(Ref.size());
      for (size_t T = 0; T != TargetNames.size(); ++T)
        for (size_t I = 0; I != Kernels.size(); ++I) {
          CompileRequest Req;
          Req.Target = TargetNames[T];
          Req.Label = Kernels[I].Name;
          Req.Make = [Spec = &Kernels[I]] {
            return std::move(Spec->Make().Prog);
          };
          Reqs.push_back(std::move(Req));
        }
      std::vector<CompileHandle> Handles = Sess.submitBatch(std::move(Reqs));
      for (size_t J = 0; J != Handles.size(); ++J) {
        const CompileResponse &R = Handles[J].get();
        const MachineDescription &TMD =
            *Reg.lookup(TargetNames[J / Kernels.size()]);
        MultiTargetOk &= R.Ok;
        MultiTargetOk &= vliwProgramToString(R.Result.Code, TMD) == Ref[J];
      }
      // Key separation, both layers: every (kernel, target) pair ran its
      // own compile (no bogus cross-target memo hit)...
      ServiceStats SS = Sess.stats();
      MultiTargetOk &= SS.Compiles == Ref.size();
      // ...and the machines genuinely schedule differently somewhere, so
      // the bit-identity above actually discriminates.
      for (size_t I = 0; I != Kernels.size() && !TargetsDiffer; ++I)
        TargetsDiffer = Ref[I] != Ref[Kernels.size() + I];
      MultiTargetOk &= TargetsDiffer;
    }
  }
  if (!MultiTargetOk)
    std::fprintf(stderr, "multi-target session gate failed\n");

  //===--------------------------------------------------------------------===//
  // Gate 5: the AdaptivePolicy controller must earn its keep. Same
  // undersized starting budget, same scripted traffic (the kernel suite
  // cycled round-robin — a classic LRU-thrash shape when the working set
  // overflows the budget): the adaptive cache, allowed to grow toward a
  // ceiling on a scripted clock, must reach a warm hit rate >= the static
  // budget's, and its code must stay bit-identical to the uncached
  // reference.
  //===--------------------------------------------------------------------===//

  double StaticHitRate = 0.0, AdaptiveHitRate = 0.0;
  uint64_t Adaptations = 0;
  bool AdaptiveOk = true;
  {
    constexpr int Rounds = 8;
    constexpr size_t SmallBudget = 4; // well under the kernel count
    auto runRounds = [&](ScheduleCache &Cache, uint64_t *ClockMs) {
      CompilerOptions CO = Opts;
      CO.Cache = &Cache;
      for (int Round = 0; Round != Rounds; ++Round) {
        for (size_t I = 0; I != Kernels.size(); ++I) {
          BuiltWorkload W = Kernels[I].Make();
          CompileResult R = compileProgram(*W.Prog, MD, CO);
          AdaptiveOk &= R.Ok;
          AdaptiveOk &= vliwProgramToString(R.Code, MD) == RefCode[I];
        }
        if (ClockMs)
          *ClockMs += 10; // One controller window per round.
      }
    };

    ScheduleCacheConfig StaticCC;
    StaticCC.MaxEntries = SmallBudget;
    ScheduleCache StaticCache(StaticCC);
    runRounds(StaticCache, nullptr);
    CacheStats SS = StaticCache.stats();
    StaticHitRate = SS.Hits + SS.Misses > 0
                        ? double(SS.Hits) / double(SS.Hits + SS.Misses)
                        : 0.0;

    uint64_t ClockMs = 0;
    ScheduleCacheConfig AdCC;
    AdCC.MaxEntries = SmallBudget;
    AdCC.Adaptive.Enabled = true;
    AdCC.Adaptive.ClockMs = [&ClockMs] { return ClockMs; };
    AdCC.Adaptive.IntervalMs = 10;
    AdCC.Adaptive.MinSamples = 4;
    AdCC.Adaptive.FloorEntries = SmallBudget;
    AdCC.Adaptive.CeilingEntries = 256;
    AdCC.Adaptive.StepPercent = 100; // Double per window under pressure.
    ScheduleCache AdCache(AdCC);
    runRounds(AdCache, &ClockMs);
    CacheStats AS = AdCache.stats();
    AdaptiveHitRate = AS.Hits + AS.Misses > 0
                          ? double(AS.Hits) / double(AS.Hits + AS.Misses)
                          : 0.0;
    Adaptations = AdCache.adaptations();

    // The controller may later hand memory back once the working set is
    // resident (hits stop generating evictions), so the gate is on what
    // the user observes — hit rate — not on the transient budget level.
    AdaptiveOk &= AdaptiveHitRate >= StaticHitRate;
    AdaptiveOk &= AdaptiveHitRate >= 0.5; // warm rounds genuinely hit
    AdaptiveOk &= Adaptations > 0;
  }
  if (!AdaptiveOk)
    std::fprintf(stderr,
                 "adaptive gate failed: warm hit rate %.3f vs static %.3f "
                 "(%llu adaptations)\n",
                 AdaptiveHitRate, StaticHitRate,
                 static_cast<unsigned long long>(Adaptations));

  // Metrics-consistency gate: the global snapshot's cache counters must
  // balance — hits + misses == lookups — after everything above.
  metrics::MetricsSnapshot Snap = metrics::MetricsRegistry::global().snapshot();
  uint64_t MLookups = Snap.counterTotal("swp_cache_lookups_total");
  uint64_t MHits = Snap.counterTotal("swp_cache_hits_total");
  uint64_t MMisses = Snap.counterTotal("swp_cache_misses_total");
  bool MetricsOk = !metrics::compiledIn() ||
                   (MLookups > 0 && MHits + MMisses == MLookups);
  if (!MetricsOk)
    std::fprintf(stderr,
                 "metrics inconsistent: hits %llu + misses %llu != "
                 "lookups %llu\n",
                 static_cast<unsigned long long>(MHits),
                 static_cast<unsigned long long>(MMisses),
                 static_cast<unsigned long long>(MLookups));

  double Baseline = baselineColdMs(BaselinePath);
  bool AllOk = WarmOk && BatchOk && BitIdentical && DiskOk &&
               DifferentialOk && MultiTargetOk && AdaptiveOk && MetricsOk;
  if (!WarmOk)
    std::fprintf(stderr, "warm gate failed: %.2fx < 10x (cold %.3fms, warm %.3fms)\n",
                 WarmSpeedup, ColdMs, WarmMs);
  if (!BatchOk)
    std::fprintf(stderr, "batch gate failed: %.2fx < 3x (serial %.3fms, batch %.3fms)\n",
                 BatchSpeedup, SerialMs, BatchMs);
  if (!BitIdentical)
    std::fprintf(stderr, "cached code is NOT bit-identical to uncached\n");
  if (!DiskOk)
    std::fprintf(stderr, "disk tier served no hits\n");

  char Buf[3072];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\n"
      "  \"bench\": \"cache\",\n"
      "  \"suite\": \"livermore-kernels\",\n"
      "  \"kernels\": %zu,\n"
      "  \"corpus\": %zu,\n"
      "  \"reps\": %d,\n"
      "  \"cold_ms_min\": %.4f,\n"
      "  \"warm_ms_min\": %.4f,\n"
      "  \"warm_speedup\": %.2f,\n"
      "  \"warm_gate_ok\": %s,\n"
      "  \"serial_ms_min\": %.4f,\n"
      "  \"batch_ms_min\": %.4f,\n"
      "  \"batch_speedup\": %.2f,\n"
      "  \"batch_gate_ok\": %s,\n"
      "  \"bit_identical\": %s,\n"
      "  \"disk_hits\": %llu,\n"
      "  \"differential_ok\": %s,\n"
      "  \"multi_target_ok\": %s,\n"
      "  \"static_hit_rate\": %.4f,\n"
      "  \"adaptive_hit_rate\": %.4f,\n"
      "  \"adaptations\": %llu,\n"
      "  \"adaptive_gate_ok\": %s,\n"
      "  \"metrics_lookups\": %llu,\n"
      "  \"metrics_consistent_ok\": %s,\n"
      "  \"cache\": %s,\n"
      "  \"service\": %s,\n"
      "  \"baseline_cold_ms\": %.4f,\n"
      "  \"speedup_vs_baseline\": %.2f\n"
      "}\n",
      Kernels.size(), Corpus.size(), Reps, ColdMs, WarmMs, WarmSpeedup,
      WarmOk ? "true" : "false", SerialMs, BatchMs, BatchSpeedup,
      BatchOk ? "true" : "false", BitIdentical ? "true" : "false",
      static_cast<unsigned long long>(DiskHits),
      DifferentialOk ? "true" : "false", MultiTargetOk ? "true" : "false",
      StaticHitRate, AdaptiveHitRate,
      static_cast<unsigned long long>(Adaptations),
      AdaptiveOk ? "true" : "false",
      static_cast<unsigned long long>(MLookups),
      MetricsOk ? "true" : "false",
      LastCache.toJson().c_str(), LastService.toJson().c_str(), Baseline,
      Baseline > 0 ? Baseline / ColdMs : 0.0);
  Out << Buf;
  std::printf("%s", Buf);
  std::printf("wrote %s\n", OutPath.c_str());
  return AllOk ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  // Default outputs land in the build tree, never the source checkout.
#ifdef SWP_BINARY_DIR
  std::string Out = std::string(SWP_BINARY_DIR) + "/BENCH_cache.json";
#else
  std::string Out = "BENCH_cache.json";
#endif
  std::string Baseline;
#ifdef SWP_SOURCE_DIR
  Baseline =
      std::string(SWP_SOURCE_DIR) + "/bench/baselines/BENCH_cache_seed.json";
#endif
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) == "--json") {
      if (I + 1 < argc)
        Out = argv[I + 1];
      if (I + 2 < argc)
        Baseline = argv[I + 2];
      break;
    }
  }
  return runGate(Out, Baseline);
}
