//===- bench_figure4_2.cpp - E4: speedup over locally compacted code ------------===//
//
// Part of warp-swp.
//
// Regenerates Figure 4-2: the histogram of whole-program speedups of
// software pipelining + hierarchical reduction over code that only
// compacts individual basic blocks. The paper reports an average factor
// of three and observes that programs containing conditionals speed up
// more (their baselines are broken into smaller blocks).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== E4 / Figure 4-2: speedup over locally compacted code "
               "===\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  auto Population = syntheticPopulation(72, /*Seed=*/1988);

  std::vector<std::pair<double, bool>> Speedups; // (factor, hasCond)
  bool AnyFailure = false;

  // Pipelined and baseline compiles of all 72 programs run concurrently,
  // two jobs per program, results in job order.
  std::vector<RunJob> Jobs;
  for (const WorkloadSpec &Spec : Population) {
    Jobs.push_back({&Spec, &MD, CompilerOptions{}, true});
    Jobs.push_back({&Spec, &MD, baselineOptions(), true});
  }
  std::vector<RunResult> Results = runJobs(Jobs);

  for (size_t I = 0; I != Population.size(); ++I) {
    const WorkloadSpec &Spec = Population[I];
    const RunResult &Swp = Results[2 * I];
    const RunResult &Base = Results[2 * I + 1];
    if (!Swp.Ok || !Base.Ok) {
      std::cout << "FAILED: " << Swp.Error << Base.Error << "\n";
      AnyFailure = true;
      continue;
    }
    bool HasCond = Spec.Name.find("-cond") != std::string::npos;
    Speedups.push_back(
        {static_cast<double>(Base.Cycles) / Swp.Cycles, HasCond});
  }

  TablePrinter T({"speedup", "programs", "", "with-conds", "without"});
  for (double Lo = 0.5; Lo < 8.0; Lo += 0.5) {
    unsigned Count = 0, Cond = 0, Plain = 0;
    for (auto [V, HasCond] : Speedups)
      if (V >= Lo && V < Lo + 0.5) {
        ++Count;
        ++(HasCond ? Cond : Plain);
      }
    if (Count)
      T.addRow({TablePrinter::num(Lo, 1) + "-" +
                    TablePrinter::num(Lo + 0.5, 1),
                std::to_string(Count), bar(Count), std::to_string(Cond),
                std::to_string(Plain)});
  }
  T.print(std::cout);

  double Sum = 0, CondSum = 0, PlainSum = 0;
  unsigned CondN = 0, PlainN = 0;
  for (auto [V, HasCond] : Speedups) {
    Sum += V;
    (HasCond ? CondSum : PlainSum) += V;
    ++(HasCond ? CondN : PlainN);
  }
  std::cout << "\nmean speedup: " << TablePrinter::num(Sum / Speedups.size(), 2)
            << "   (paper: about 3)\n";
  std::cout << "mean with conditionals:    "
            << TablePrinter::num(CondSum / CondN, 2) << " over " << CondN
            << " programs (paper: 42 programs, larger speedups)\n";
  std::cout << "mean without conditionals: "
            << TablePrinter::num(PlainSum / PlainN, 2) << " over " << PlainN
            << " programs\n";
  return AnyFailure ? 1 : 0;
}
