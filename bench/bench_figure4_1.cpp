//===- bench_figure4_1.cpp - E3/E6: MFLOPS of the 72-program population ---------===//
//
// Part of warp-swp.
//
// Regenerates Figure 4-1 (the MFLOPS histogram of 72 user programs, here
// reported per cell against the 10 MFLOPS peak) and the section 4.1
// scheduling-quality statistics: the fraction of attempted loops whose
// achieved II equals the lower bound (paper: 75%), and the fraction of
// loops without conditionals or recurrences that pipeline perfectly
// (paper: 93%).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== E3 / Figure 4-1: cell MFLOPS across the 72-program "
               "population ===\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  auto Population = syntheticPopulation(72, /*Seed=*/1988);

  std::vector<double> MFLOPS;
  unsigned AttemptedLoops = 0, AtBound = 0;
  unsigned EasyLoops = 0, EasyPerfect = 0;
  bool AnyFailure = false;

  // The 72 programs are independent: compile them all in parallel.
  std::vector<RunResult> Results = runWorkloads(Population, MD,
                                                CompilerOptions{});
  for (const RunResult &R : Results) {
    if (!R.Ok) {
      std::cout << "FAILED: " << R.Error << "\n";
      AnyFailure = true;
      continue;
    }
    MFLOPS.push_back(R.CellMFLOPS);
    for (const LoopReport &L : R.Report.Loops) {
      if (!L.pipelined())
        continue;
      ++AttemptedLoops;
      if (L.II == L.MII)
        ++AtBound;
      if (!L.HasConditionals && !L.HasRecurrence) {
        ++EasyLoops;
        if (L.II == L.MII)
          ++EasyPerfect;
      }
    }
  }

  // Histogram in 0.5-MFLOPS buckets.
  TablePrinter T({"cell MFLOPS", "programs", ""});
  for (double Lo = 0.0; Lo < 10.0; Lo += 0.5) {
    unsigned Count = 0;
    for (double V : MFLOPS)
      if (V >= Lo && V < Lo + 0.5)
        ++Count;
    if (Count)
      T.addRow({TablePrinter::num(Lo, 1) + "-" +
                    TablePrinter::num(Lo + 0.5, 1),
                std::to_string(Count), bar(Count)});
  }
  T.print(std::cout);

  double Sum = 0;
  for (double V : MFLOPS)
    Sum += V;
  std::cout << "\nprograms: " << MFLOPS.size()
            << "   mean cell MFLOPS: "
            << TablePrinter::num(Sum / MFLOPS.size(), 2)
            << " (peak 10.0)\n";

  std::cout << "\n--- E6: scheduling-quality statistics (section 4.1) ---\n";
  std::cout << "loops scheduled at the II lower bound: " << AtBound << "/"
            << AttemptedLoops << " = "
            << TablePrinter::num(100.0 * AtBound / AttemptedLoops, 0)
            << "%   (paper: 75%)\n";
  std::cout << "perfect schedules among loops without conditionals or "
               "recurrences: "
            << EasyPerfect << "/" << EasyLoops << " = "
            << TablePrinter::num(100.0 * EasyPerfect / EasyLoops, 0)
            << "%   (paper: 93%)\n";
  return AnyFailure ? 1 : 0;
}
