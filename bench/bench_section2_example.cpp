//===- bench_section2_example.cpp - E1: the paper's section 2 example ----------===//
//
// Part of warp-swp.
//
// Reproduces the introductory example: adding a constant to a vector on a
// machine with a read port, a one-stage-pipelined adder, and a write
// port. The paper schedules it at II = 1 (Read@0, Add@1, Write@3) and
// reports "four times the speed of the original program".
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/IR/IRBuilder.h"
#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== E1: section 2 vector-add example (toy machine) ===\n";
  std::cout << "paper: II=1; steady state holds 4 iterations; 4x speedup\n\n";

  WorkloadSpec Spec;
  Spec.Name = "section2-vector-add";
  Spec.Make = [] {
    BuiltWorkload W;
    W.Prog = std::make_unique<Program>();
    IRBuilder B(*W.Prog);
    unsigned A = W.Prog->createArray("a", RegClass::Float, 1100);
    VReg K = B.fconst(1.0);
    ForStmt *L = B.beginForImm(0, 999);
    B.fstore(A, B.ix(L), B.fadd(B.fload(A, B.ix(L)), K));
    B.endFor();
    for (int I = 0; I != 1100; ++I)
      W.Input.FloatArrays[A].push_back(0.25f * I);
    return W;
  };

  MachineDescription MD = MachineDescription::toyCell();
  RunResult Swp = runWorkload(Spec, MD, CompilerOptions{});
  RunResult Base = runWorkload(Spec, MD, baselineOptions());
  if (!Swp.Ok || !Base.Ok) {
    std::cout << "FAILED: " << Swp.Error << Base.Error << "\n";
    return 1;
  }

  const LoopReport *L = Swp.Report.primaryLoop();
  TablePrinter T({"metric", "paper", "measured"});
  T.addRow({"initiation interval", "1", std::to_string(L->II)});
  T.addRow({"iterations in flight", "4", std::to_string(L->Stages)});
  T.addRow({"unpipelined iteration length", "4",
            std::to_string(L->UnpipelinedLen)});
  double Speedup = static_cast<double>(Base.Cycles) / Swp.Cycles;
  T.addRow({"speedup over unpipelined", "4.0",
            TablePrinter::num(Speedup, 2)});
  T.print(std::cout);
  std::cout << "\npipelined cycles:   " << Swp.Cycles
            << "\nunpipelined cycles: " << Base.Cycles << "\n";
  return 0;
}
