//===- bench_table4_1.cpp - E2: user programs on the 10-cell array --------------===//
//
// Part of warp-swp.
//
// Regenerates Table 4-1: the representative application programs, their
// task time, and MFLOPS. The paper's programs are homogeneous (every cell
// runs the same program), so the array rate is ten times the cell rate;
// task sizes are scaled down for the cycle-level simulator.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== E2 / Table 4-1: application programs on the Warp array "
               "===\n";
  std::cout << "(array MFLOPS = 10 cells x cell MFLOPS, homogeneous "
               "programs;\n tasks scaled down from the paper's 512x512 "
               "sizes)\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  TablePrinter T({"task", "time(ms)", "MFLOPS(array)", "MFLOPS(cell)",
                  "speedup-vs-local"});
  bool AnyFailure = false;

  // Compile the pipelined and baseline variants of every program
  // concurrently; results come back in job order, two per program.
  const std::vector<WorkloadSpec> &Specs = userPrograms();
  std::vector<RunJob> Jobs;
  for (const WorkloadSpec &Spec : Specs) {
    Jobs.push_back({&Spec, &MD, CompilerOptions{}, true});
    Jobs.push_back({&Spec, &MD, baselineOptions(), true});
  }
  std::vector<RunResult> Results = runJobs(Jobs);

  for (size_t I = 0; I != Specs.size(); ++I) {
    const WorkloadSpec &Spec = Specs[I];
    const RunResult &Swp = Results[2 * I];
    const RunResult &Base = Results[2 * I + 1];
    if (!Swp.Ok || !Base.Ok) {
      std::cout << "FAILED: " << Swp.Error << Base.Error << "\n";
      AnyFailure = true;
      continue;
    }
    double Ms = static_cast<double>(Swp.Cycles) / (MD.clockMHz() * 1000.0);
    double Speedup = static_cast<double>(Base.Cycles) / Swp.Cycles;
    T.addRow({Spec.Name, TablePrinter::num(Ms, 2),
              TablePrinter::num(10.0 * Swp.CellMFLOPS, 1),
              TablePrinter::num(Swp.CellMFLOPS, 2),
              TablePrinter::num(Speedup, 2)});
  }
  T.print(std::cout);
  std::cout << "\npaper (512x512 tasks, real hardware): matmul 79.4, FFT "
               "65.7,\n 3x3 convolution 71.9, Hough 42.2(*), local "
               "averaging 42.2,\n shortest path 24.3, Roberts 15.2 array "
               "MFLOPS\n";
  return AnyFailure ? 1 : 0;
}
