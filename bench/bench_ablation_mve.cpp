//===- bench_ablation_mve.cpp - A1: modulo variable expansion ablation ----------===//
//
// Part of warp-swp.
//
// What modulo variable expansion (section 2.3) buys: with it disabled,
// every redefined register keeps its inter-iteration anti/output
// dependences, which caps the achievable II the way the paper's
// Def(R)/Use(R) example shows. Also contrasts the two unroll policies:
// u = max(q_i) (paper's min-code-size rule) against u = lcm(q_i)
// (min registers, potentially much larger steady state).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

int main() {
  std::cout << "=== A1: modulo variable expansion ablation ===\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  TablePrinter T({"kernel", "II(mve)", "II(off)", "cyc(off)/cyc(mve)",
                  "unroll(max)", "unroll(lcm)", "kernel-insts(max)",
                  "kernel-insts(lcm)"});
  bool AnyFailure = false;

  for (const WorkloadSpec &Spec : livermoreKernels()) {
    if (Spec.Number == 22)
      continue; // Not pipelined either way.
    CompilerOptions WithMVE;
    CompilerOptions NoMVE;
    NoMVE.MVE = MVEPolicy::Disabled;
    CompilerOptions Lcm;
    Lcm.MVE = MVEPolicy::MinRegisters;

    RunResult A = runWorkload(Spec, MD, WithMVE);
    RunResult B = runWorkload(Spec, MD, NoMVE);
    RunResult C = runWorkload(Spec, MD, Lcm);
    if (!A.Ok || !B.Ok || !C.Ok) {
      std::cout << "FAILED: " << A.Error << B.Error << C.Error << "\n";
      AnyFailure = true;
      continue;
    }
    const LoopReport *LA = A.Report.primaryLoop();
    const LoopReport *LB = B.Report.primaryLoop();
    const LoopReport *LC = C.Report.primaryLoop();
    auto IIOf = [](const LoopReport *L) {
      return L && L->pipelined() ? std::to_string(L->II) : std::string("-");
    };
    T.addRow({Spec.Name, IIOf(LA), IIOf(LB),
              TablePrinter::num(static_cast<double>(B.Cycles) / A.Cycles, 2),
              LA && LA->pipelined() ? std::to_string(LA->Unroll) : "-",
              LC && LC->pipelined() ? std::to_string(LC->Unroll) : "-",
              LA && LA->pipelined() ? std::to_string(LA->KernelInsts) : "-",
              LC && LC->pipelined() ? std::to_string(LC->KernelInsts) : "-"});
  }
  T.print(std::cout);
  std::cout << "\nexpected shape: disabling MVE inflates the II (register "
               "reuse serializes overlapped iterations); the lcm policy "
               "matches the max policy's II but can inflate the unrolled "
               "steady state.\n";
  return AnyFailure ? 1 : 0;
}
