//===- bench_unrolling_comparison.cpp - E8: SWP vs. unroll-and-compact ----------===//
//
// Part of warp-swp.
//
// Measures the section 5.1 comparison: trace-scheduling-style loop
// parallelism comes from source unrolling plus compaction of the bigger
// block; software pipelining overlaps iterations without unrolling. The
// paper's claims: unrolling improves with the factor but cannot reach
// optimal throughput (fill/drain per unrolled iteration), needs
// experimentation to pick the factor, and grows the code; pipelining hits
// the bound with compact code. A 2-stage-limited pipeliner (the FPS-164
// compiler's two-iteration overlap) is included for the section 1
// comparison.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "swp/Pipeliner/Unroller.h"
#include "swp/Support/TablePrinter.h"

#include <iostream>

using namespace swp;
using namespace swp::bench;

namespace {

/// Wraps a workload so its loops are unrolled before compilation.
WorkloadSpec unrolled(const WorkloadSpec &Spec, unsigned Factor) {
  WorkloadSpec S = Spec;
  S.Name = Spec.Name + "-u" + std::to_string(Factor);
  S.Make = [Make = Spec.Make, Factor] {
    BuiltWorkload W = Make();
    unrollInnermostLoops(*W.Prog, Factor);
    return W;
  };
  return S;
}

} // namespace

int main() {
  std::cout << "=== E8: software pipelining vs unroll-and-compact "
               "(section 5) ===\n\n";

  MachineDescription MD = MachineDescription::warpCell();
  // Parallel kernels where both techniques can win.
  std::vector<int> Numbers = {1, 7, 9, 12};
  TablePrinter T({"kernel", "base", "u2", "u4", "u8", "2-stage-swp", "swp",
                  "swp-II", "code(u8)", "code(swp)"});
  bool AnyFailure = false;

  for (const WorkloadSpec &Spec : livermoreKernels()) {
    if (std::find(Numbers.begin(), Numbers.end(), Spec.Number) ==
        Numbers.end())
      continue;
    RunResult Base = runWorkload(Spec, MD, baselineOptions());
    RunResult U2 = runWorkload(unrolled(Spec, 2), MD, baselineOptions());
    RunResult U4 = runWorkload(unrolled(Spec, 4), MD, baselineOptions());
    RunResult U8 = runWorkload(unrolled(Spec, 8), MD, baselineOptions());
    CompilerOptions TwoStage;
    TwoStage.Sched.MaxStages = 2;
    RunResult Fps = runWorkload(Spec, MD, TwoStage);
    RunResult Swp = runWorkload(Spec, MD, CompilerOptions{});
    // The mandatory configurations must run; an unrolled variant may
    // legitimately burst the register files — that IS a result ("as the
    // degree of unrolling increases, so do the problem size and the
    // final code size", section 5.1) and is reported as such.
    for (const RunResult *R : {&Base, &Fps, &Swp})
      if (!R->Ok) {
        std::cout << "FAILED: " << R->Error << "\n";
        AnyFailure = true;
      }
    if (AnyFailure)
      continue;
    auto Speed = [&](const RunResult &R) {
      if (!R.Ok)
        return std::string("regs!");
      return TablePrinter::num(static_cast<double>(Base.Cycles) / R.Cycles,
                               2);
    };
    const LoopReport *L = Swp.Report.primaryLoop();
    T.addRow({Spec.Name, "1.00", Speed(U2), Speed(U4), Speed(U8),
              Speed(Fps), Speed(Swp),
              L && L->pipelined() ? std::to_string(L->II) : "-",
              U8.Ok ? std::to_string(U8.CodeSize) : "-",
              std::to_string(Swp.CodeSize)});
  }
  T.print(std::cout);
  std::cout << "\ncolumns are speedups over the locally compacted loop; "
               "code columns are emitted instructions.\n"
               "expected shape: unrolling approaches but does not reach "
               "the pipelined rate, at much larger code size.\n";
  return AnyFailure ? 1 : 0;
}
